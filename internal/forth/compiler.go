package forth

import (
	"fmt"

	"stackcache/internal/vm"
)

// Options configures compilation.
type Options struct {
	// Superinstructions enables peephole combination of frequent
	// sequences into higher-semantic-content opcodes (paper §2.2),
	// currently `lit +` → OpLitAdd.
	Superinstructions bool

	// Inline enables procedure inlining of short straight-line words:
	// calls to a word whose body is at most InlineLimit instructions
	// with no control flow are replaced by the body. The paper's §6
	// points out that inlining is "the best way to reduce the number
	// of cache resets" under static stack caching, since most resets
	// come from calls and returns.
	Inline bool

	// InlineLimit caps the inlined body length (default 8).
	InlineLimit int

	// NoPrelude suppresses the built-in prelude (cr, space, …). Used
	// by tests that want full control of the dictionary.
	NoPrelude bool
}

// CacheKey renders the options as a short stable string, so that a
// content-addressed program cache can key compiled programs by
// (options, source) without two distinct configurations ever
// colliding. The encoding is explicit rather than derived so that
// adding an option forces a conscious decision about cache identity.
func (o Options) CacheKey() string {
	limit := o.InlineLimit
	if !o.Inline {
		limit = 0
	}
	return fmt.Sprintf("super=%t,inline=%t,limit=%d,noprelude=%t",
		o.Superinstructions, o.Inline, limit, o.NoPrelude)
}

// Compile compiles src with default options.
func Compile(src string) (*vm.Program, error) {
	return CompileWithOptions(src, Options{})
}

// CompileWithOptions compiles a Forth program to a vm.Program. The
// program must define "main"; the generated entry code calls main and
// halts.
func CompileWithOptions(src string, opt Options) (*vm.Program, error) {
	c := &compiler{
		b:       vm.NewBuilder(),
		dict:    make(map[string]dictEntry),
		opt:     opt,
		lastLit: -1,
	}
	if !opt.NoPrelude {
		if err := c.compileSource(prelude); err != nil {
			return nil, fmt.Errorf("forth: prelude: %w", err)
		}
	}
	if err := c.compileSource(src); err != nil {
		return nil, err
	}
	if _, ok := c.dict["main"]; !ok {
		return nil, fmt.Errorf("forth: no main defined")
	}
	entry := c.b.Pos()
	c.b.CallTo("main")
	c.b.Emit(vm.OpHalt)
	c.b.SetEntryPos(entry)
	p, err := c.b.Build()
	if err != nil {
		return nil, err
	}
	// Self-check: everything the front end emits must satisfy the full
	// static contract the engines' fast paths rely on. A failure here
	// is a compiler bug, not a user error.
	if err := vm.Verify(p); err != nil {
		return nil, fmt.Errorf("forth: internal error: compiled program fails verification: %w", err)
	}
	return p, nil
}

// wordKind classifies dictionary entries.
type wordKind int

const (
	kindColon    wordKind = iota // user definition: compile a call
	kindConstant                 // compile a literal
	kindVariable                 // compile the address as a literal
)

type dictEntry struct {
	kind  wordKind
	value vm.Cell // code address, constant value, or data address

	// body is the word's straight-line body (exit stripped) when the
	// word is eligible for inlining, nil otherwise.
	body []vm.Instr
}

// ctlKind tags entries of the control-flow stack during compilation.
type ctlKind int

const (
	ctlIf ctlKind = iota
	ctlBegin
	ctlWhile
	ctlDo
)

type ctlEntry struct {
	kind  ctlKind
	label string // primary label (if: else/then target; begin/do: loop head)
	exit  string // secondary label (while: exit; do: leave target)
}

type compiler struct {
	b    *vm.Builder
	dict map[string]dictEntry
	opt  Options

	lx        *lexer
	inColon   bool
	current   string // word being defined, for recurse
	ctl       []ctlEntry
	nextLabel int

	// istack is the interpret-mode stack, fed by literals and
	// constants; allot, constant and , consume it.
	istack []vm.Cell

	// lastLit is the code index of the previous instruction when it
	// was OpLit, or -1; it drives the superinstruction peephole.
	lastLit int
}

func (c *compiler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("forth: line %d: "+format, append([]any{line}, args...)...)
}

func (c *compiler) genLabel() string {
	c.nextLabel++
	return fmt.Sprintf(".L%d", c.nextLabel)
}

func (c *compiler) compileSource(src string) error {
	saved := c.lx
	c.lx = newLexer(src)
	defer func() { c.lx = saved }()
	for {
		tok, ok := c.lx.next()
		if !ok {
			if c.inColon {
				return fmt.Errorf("forth: unterminated definition of %q", c.current)
			}
			if len(c.ctl) > 0 {
				return fmt.Errorf("forth: unbalanced control structure at end of input")
			}
			return nil
		}
		if err := c.word(tok); err != nil {
			return err
		}
	}
}

// word processes one token in the current mode.
func (c *compiler) word(tok token) error {
	name := tok.text
	switch name {
	case "\\":
		c.lx.skipLine()
		return nil
	case "(":
		_, err := c.lx.readUntil(')')
		return err
	case ":":
		return c.startColon(tok)
	case ";":
		return c.endColon(tok)
	}
	if c.inColon {
		return c.compileWord(tok)
	}
	return c.interpretWord(tok)
}

func (c *compiler) startColon(tok token) error {
	if c.inColon {
		return c.errf(tok.line, "nested ':'")
	}
	nameTok, ok := c.lx.next()
	if !ok {
		return c.errf(tok.line, "':' at end of input")
	}
	name := nameTok.text
	if _, dup := c.dict[name]; dup {
		return c.errf(nameTok.line, "redefinition of %q", name)
	}
	if _, prim := vm.OpcodeByName(name); prim {
		return c.errf(nameTok.line, "cannot redefine primitive %q", name)
	}
	c.dict[name] = dictEntry{kind: kindColon, value: vm.Cell(c.b.Pos())}
	c.b.Word(name)
	c.inColon = true
	c.current = name
	c.lastLit = -1
	return nil
}

func (c *compiler) endColon(tok token) error {
	if !c.inColon {
		return c.errf(tok.line, "';' outside definition")
	}
	if len(c.ctl) > 0 {
		return c.errf(tok.line, "unbalanced control structure in %q", c.current)
	}
	c.emit(vm.OpExit)
	if c.opt.Inline {
		c.recordInlineBody()
	}
	c.inColon = false
	c.current = ""
	return nil
}

// recordInlineBody makes the just-finished word inlinable if its body
// (without the final exit) is short and straight-line: no control
// flow, hence also no internal branch targets.
func (c *compiler) recordInlineBody() {
	limit := c.opt.InlineLimit
	if limit <= 0 {
		limit = 8
	}
	e := c.dict[c.current]
	start, end := int(e.value), c.b.Pos()-1 // end excludes the exit
	if end-start > limit {
		return
	}
	body := make([]vm.Instr, 0, end-start)
	for pc := start; pc < end; pc++ {
		ins := c.b.InstrAt(pc)
		if vm.EffectOf(ins.Op).Control {
			return
		}
		body = append(body, ins)
	}
	e.body = body
	c.dict[c.current] = e
}

// emit appends an instruction in compile mode, maintaining the
// superinstruction peephole state.
func (c *compiler) emit(op vm.Opcode) {
	if c.opt.Superinstructions && c.lastLit >= 0 {
		// Rewrite `lit n <op>` per the Shrink rules of the shared
		// vm.Fusions table (currently `lit +` → `lit+ n`), in place of
		// the literal (paper §2.2: combining often-used sequences
		// increases semantic content and saves a dispatch). Consulting
		// the same table vm.Quicken matches against keeps the two fusion
		// passes from drifting or double-fusing: a pair shrunk here no
		// longer exists for the quickener, and Quicken never applies
		// Shrink rules itself. lastLit is reset at every label, so no
		// branch target can point between the two instructions fused.
		if super, ok := vm.ShrinkPair(vm.OpLit, op); ok {
			arg := c.b.InstrAt(c.lastLit).Arg
			c.b.ReplaceAt(c.lastLit, vm.Instr{Op: super, Arg: arg})
			c.lastLit = -1
			return
		}
	}
	c.b.Emit(op)
	c.lastLit = -1
}

func (c *compiler) emitLit(n vm.Cell) {
	c.lastLit = c.b.Lit(n)
}

func (c *compiler) compileWord(tok token) error {
	name := tok.text

	// Control structures and compile-time words.
	switch name {
	case "if":
		l := c.genLabel()
		c.b.BranchZeroTo(l)
		c.lastLit = -1
		c.ctl = append(c.ctl, ctlEntry{kind: ctlIf, label: l})
		return nil
	case "else":
		top, err := c.popCtl(tok, ctlIf, "else")
		if err != nil {
			return err
		}
		end := c.genLabel()
		c.b.BranchTo(end)
		c.b.Label(top.label)
		c.lastLit = -1
		c.ctl = append(c.ctl, ctlEntry{kind: ctlIf, label: end})
		return nil
	case "then":
		top, err := c.popCtl(tok, ctlIf, "then")
		if err != nil {
			return err
		}
		c.b.Label(top.label)
		c.lastLit = -1
		return nil
	case "begin":
		l := c.genLabel()
		c.b.Label(l)
		c.lastLit = -1
		c.ctl = append(c.ctl, ctlEntry{kind: ctlBegin, label: l})
		return nil
	case "until":
		top, err := c.popCtl(tok, ctlBegin, "until")
		if err != nil {
			return err
		}
		c.b.BranchZeroTo(top.label)
		c.lastLit = -1
		return nil
	case "again":
		top, err := c.popCtl(tok, ctlBegin, "again")
		if err != nil {
			return err
		}
		c.b.BranchTo(top.label)
		c.lastLit = -1
		return nil
	case "while":
		if len(c.ctl) == 0 || c.ctl[len(c.ctl)-1].kind != ctlBegin {
			return c.errf(tok.line, "'while' without 'begin'")
		}
		exit := c.genLabel()
		c.b.BranchZeroTo(exit)
		c.lastLit = -1
		c.ctl[len(c.ctl)-1] = ctlEntry{kind: ctlWhile, label: c.ctl[len(c.ctl)-1].label, exit: exit}
		return nil
	case "repeat":
		top, err := c.popCtl(tok, ctlWhile, "repeat")
		if err != nil {
			return err
		}
		c.b.BranchTo(top.label)
		c.b.Label(top.exit)
		c.lastLit = -1
		return nil
	case "do":
		c.emit(vm.OpDo)
		head := c.genLabel()
		leave := c.genLabel()
		c.b.Label(head)
		c.ctl = append(c.ctl, ctlEntry{kind: ctlDo, label: head, exit: leave})
		return nil
	case "loop":
		top, err := c.popCtl(tok, ctlDo, "loop")
		if err != nil {
			return err
		}
		c.b.LoopTo(top.label)
		c.b.Label(top.exit)
		c.lastLit = -1
		return nil
	case "+loop":
		top, err := c.popCtl(tok, ctlDo, "+loop")
		if err != nil {
			return err
		}
		c.b.PlusLoopTo(top.label)
		c.b.Label(top.exit)
		c.lastLit = -1
		return nil
	case "leave":
		for i := len(c.ctl) - 1; i >= 0; i-- {
			if c.ctl[i].kind == ctlDo {
				c.emit(vm.OpUnloop)
				c.b.BranchTo(c.ctl[i].exit)
				return nil
			}
		}
		return c.errf(tok.line, "'leave' outside do-loop")
	case "recurse":
		c.b.CallTo(c.current)
		c.lastLit = -1
		return nil
	case ".\"":
		c.lx.skipOneSpace()
		s, err := c.lx.readUntil('"')
		if err != nil {
			return err
		}
		addr := c.b.AllocData([]byte(s))
		c.emitLit(addr)
		c.emitLit(vm.Cell(len(s)))
		c.emit(vm.OpType)
		return nil
	case "s\"":
		c.lx.skipOneSpace()
		s, err := c.lx.readUntil('"')
		if err != nil {
			return err
		}
		addr := c.b.AllocData([]byte(s))
		c.emitLit(addr)
		c.emitLit(vm.Cell(len(s)))
		return nil
	case "[char]", "char":
		ch, ok := c.lx.next()
		if !ok || len(ch.text) == 0 {
			return c.errf(tok.line, "%s at end of input", name)
		}
		c.emitLit(vm.Cell(ch.text[0]))
		return nil
	}

	// Primitives.
	if op, ok := vm.OpcodeByName(name); ok {
		if allowed := compilablePrimitive(op); !allowed {
			return c.errf(tok.line, "%q cannot be used directly", name)
		}
		c.emit(op)
		return nil
	}

	// Dictionary words.
	if e, ok := c.dict[name]; ok {
		switch e.kind {
		case kindColon:
			if c.opt.Inline && e.body != nil {
				for _, ins := range e.body {
					c.b.EmitArg(ins.Op, ins.Arg)
				}
				c.lastLit = -1
				return nil
			}
			c.b.CallTo(name)
			c.lastLit = -1
		case kindConstant, kindVariable:
			c.emitLit(e.value)
		}
		return nil
	}

	// Numbers.
	if n, ok := parseNumber(name); ok {
		c.emitLit(n)
		return nil
	}
	return c.errf(tok.line, "undefined word %q", name)
}

// compilablePrimitive excludes raw control-flow opcodes that must be
// produced through structured words, so user programs cannot create
// ill-formed code.
func compilablePrimitive(op vm.Opcode) bool {
	switch op {
	case vm.OpLit, vm.OpLitAdd, vm.OpBranch, vm.OpBranchZero, vm.OpCall,
		vm.OpHalt, vm.OpDo, vm.OpLoop, vm.OpPlusLoop:
		return false
	}
	return true
}

func (c *compiler) popCtl(tok token, want ctlKind, word string) (ctlEntry, error) {
	if len(c.ctl) == 0 || c.ctl[len(c.ctl)-1].kind != want {
		return ctlEntry{}, c.errf(tok.line, "%q without matching opener", word)
	}
	top := c.ctl[len(c.ctl)-1]
	c.ctl = c.ctl[:len(c.ctl)-1]
	return top, nil
}

// interpretWord handles top-level (interpret mode) tokens: data
// definitions and the small literal stack that feeds them.
func (c *compiler) interpretWord(tok token) error {
	name := tok.text
	switch name {
	case "variable":
		nameTok, ok := c.lx.next()
		if !ok {
			return c.errf(tok.line, "'variable' at end of input")
		}
		if _, dup := c.dict[nameTok.text]; dup {
			return c.errf(nameTok.line, "redefinition of %q", nameTok.text)
		}
		addr := c.b.Alloc(vm.CellSize)
		c.dict[nameTok.text] = dictEntry{kind: kindVariable, value: addr}
		return nil
	case "constant":
		nameTok, ok := c.lx.next()
		if !ok {
			return c.errf(tok.line, "'constant' at end of input")
		}
		v, err := c.ipop(tok)
		if err != nil {
			return err
		}
		if _, dup := c.dict[nameTok.text]; dup {
			return c.errf(nameTok.line, "redefinition of %q", nameTok.text)
		}
		c.dict[nameTok.text] = dictEntry{kind: kindConstant, value: v}
		return nil
	case "create":
		nameTok, ok := c.lx.next()
		if !ok {
			return c.errf(tok.line, "'create' at end of input")
		}
		if _, dup := c.dict[nameTok.text]; dup {
			return c.errf(nameTok.line, "redefinition of %q", nameTok.text)
		}
		c.dict[nameTok.text] = dictEntry{kind: kindVariable, value: vm.Cell(c.b.MemSize())}
		return nil
	case "allot":
		n, err := c.ipop(tok)
		if err != nil {
			return err
		}
		if n < 0 {
			return c.errf(tok.line, "negative allot")
		}
		c.b.Alloc(int(n))
		return nil
	case ",":
		v, err := c.ipop(tok)
		if err != nil {
			return err
		}
		buf := make([]byte, vm.CellSize)
		for i := 0; i < vm.CellSize; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		c.b.AllocData(buf)
		return nil
	case "c,":
		v, err := c.ipop(tok)
		if err != nil {
			return err
		}
		c.b.AllocData([]byte{byte(v)})
		return nil
	case "char":
		ch, ok := c.lx.next()
		if !ok || len(ch.text) == 0 {
			return c.errf(tok.line, "'char' at end of input")
		}
		c.istack = append(c.istack, vm.Cell(ch.text[0]))
		return nil
	case "cells":
		v, err := c.ipop(tok)
		if err != nil {
			return err
		}
		c.istack = append(c.istack, v*vm.CellSize)
		return nil
	case "+":
		b, err := c.ipop(tok)
		if err != nil {
			return err
		}
		a, err := c.ipop(tok)
		if err != nil {
			return err
		}
		c.istack = append(c.istack, a+b)
		return nil
	case "*":
		b, err := c.ipop(tok)
		if err != nil {
			return err
		}
		a, err := c.ipop(tok)
		if err != nil {
			return err
		}
		c.istack = append(c.istack, a*b)
		return nil
	}
	if e, ok := c.dict[name]; ok && (e.kind == kindConstant || e.kind == kindVariable) {
		c.istack = append(c.istack, e.value)
		return nil
	}
	if n, ok := parseNumber(name); ok {
		c.istack = append(c.istack, n)
		return nil
	}
	return c.errf(tok.line, "cannot interpret %q outside a definition", name)
}

func (c *compiler) ipop(tok token) (vm.Cell, error) {
	if len(c.istack) == 0 {
		return 0, c.errf(tok.line, "interpret stack empty")
	}
	v := c.istack[len(c.istack)-1]
	c.istack = c.istack[:len(c.istack)-1]
	return v, nil
}
