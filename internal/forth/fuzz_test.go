package forth

import (
	"testing"

	"stackcache/internal/interp"
)

// FuzzCompile feeds arbitrary source to the compiler: it must either
// fail cleanly or produce a validated program that runs (up to a step
// budget) without panicking.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`: main 1 2 + . ;`,
		`: main 10 0 do i . loop ;`,
		`variable x : main 5 x ! x @ . ;`,
		`: f dup 0> if 1- recurse then ; : main 10 f . ;`,
		`: main ." hello" s" x" type ;`,
		`: main begin 1 until ;`,
		"0 constant z create t 1 , 2 c, : main t @ . ;",
		`: main ( comment ) \ line`,
		`:::: ;;;;`,
		`: main 99999999999999999999 . ;`,
		`: main [char]`,
		`: main if if if then`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("compiled program does not validate: %v", err)
		}
		m := interp.NewMachine(p)
		m.MaxSteps = 100000
		_ = interp.RunSwitch(m) // runtime errors are fine; panics are not
	})
}

// FuzzCompileEnginesAgree checks behavioural equivalence of all
// engines on fuzzer-found programs that compile and terminate.
func FuzzCompileEnginesAgree(f *testing.F) {
	f.Add(`: sq dup * ; : main 4 sq . 2 sq . ;`)
	f.Add(`: main 0 100 0 do i + loop . ;`)
	f.Add(`: main 1 2 3 rot swap over . . . . ;`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return
		}
		run := func(e interp.Engine) (interp.Snapshot, error) {
			m := interp.NewMachine(p)
			m.MaxSteps = 100000
			var err error
			switch e {
			case interp.EngineSwitch:
				err = interp.RunSwitch(m)
			case interp.EngineToken:
				err = interp.RunToken(m)
			default:
				err = interp.RunThreaded(m)
			}
			return m.Snapshot(), err
		}
		ref, refErr := run(interp.EngineSwitch)
		for _, e := range []interp.Engine{interp.EngineToken, interp.EngineThreaded} {
			got, gotErr := run(e)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("%v error disagreement: %v vs %v", e, refErr, gotErr)
			}
			if refErr == nil && !ref.Equal(got) {
				t.Fatalf("%v result disagreement", e)
			}
		}
	})
}
