// Package forth compiles a Forth-like language to virtual machine code
// (vm.Program). It is the "compiler" of the paper's terminology — the
// program that generates virtual machine code — and the substrate on
// which the benchmark workloads (internal/workloads) are written, just
// as the paper's measurements were taken on real Forth applications.
//
// The dialect is a practical subset of Forth:
//
//	: name ... ;                    colon definitions
//	if else then                    conditionals
//	begin until / begin again       loops
//	begin while repeat
//	do loop +loop i j leave unloop  counted loops
//	variable constant create allot , c,
//	." text"  s" text"  char [char]
//	\ line comments, ( ... ) comments
//	recurse exit
//
// plus all primitives of the instruction set under their usual Forth
// names (+ - * / mod dup swap over rot @ ! c@ c! +! >r r> r@ emit .
// type …). Programs must define "main"; the compiled program calls it
// and halts.
package forth

import (
	"fmt"
	"strings"
)

// token is one lexical unit with its source position.
type token struct {
	text string
	line int
}

// lexer splits Forth source into whitespace-separated tokens, tracking
// line numbers. Comments and string literals need lookahead that
// depends on the word being compiled (e.g. `."` consumes up to the
// closing quote), so the lexer exposes both next-token and
// read-until-delimiter operations, as a Forth outer interpreter does.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// next returns the next token, or ok=false at end of input.
func (lx *lexer) next() (token, bool) {
	for lx.pos < len(lx.src) && isSpace(lx.src[lx.pos]) {
		if lx.src[lx.pos] == '\n' {
			lx.line++
		}
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{}, false
	}
	start := lx.pos
	for lx.pos < len(lx.src) && !isSpace(lx.src[lx.pos]) {
		lx.pos++
	}
	return token{text: lx.src[start:lx.pos], line: lx.line}, true
}

// readUntil consumes input up to and including the next occurrence of
// delim and returns the text before it (used for string literals and
// ( comments ). The leading space after the introducing word has
// already been skipped by next()'s caller via skipOneSpace.
func (lx *lexer) readUntil(delim byte) (string, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == delim {
			s := lx.src[start:lx.pos]
			lx.pos++
			return s, nil
		}
		if c == '\n' {
			lx.line++
		}
		lx.pos++
	}
	return "", fmt.Errorf("line %d: unterminated %q", lx.line, string(delim))
}

// skipOneSpace skips exactly one space character if present; Forth's
// string words (`." hello"`) are separated from their text by a single
// blank.
func (lx *lexer) skipOneSpace() {
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t') {
		lx.pos++
	}
}

// skipLine consumes the remainder of the current line (\ comments).
func (lx *lexer) skipLine() {
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// parseNumber recognizes Forth number literals: decimal with optional
// sign, $-prefixed or 0x-prefixed hexadecimal.
func parseNumber(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	if s[0] == '-' && len(s) > 1 {
		neg, s = true, s[1:]
	}
	base := int64(10)
	switch {
	case s[0] == '$' && len(s) > 1:
		base, s = 16, s[1:]
	case strings.HasPrefix(s, "0x") && len(s) > 2:
		base, s = 16, s[2:]
	}
	var n int64
	for i := 0; i < len(s); i++ {
		d := digitVal(s[i])
		if d < 0 || int64(d) >= base {
			return 0, false
		}
		n = n*base + int64(d)
	}
	if neg {
		n = -n
	}
	return n, true
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
