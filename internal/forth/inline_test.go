package forth

import (
	"testing"

	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

func countCalls(p *vm.Program) int {
	n := 0
	for _, ins := range p.Code {
		if ins.Op == vm.OpCall {
			n++
		}
	}
	return n
}

func TestInlineEliminatesCalls(t *testing.T) {
	src := `
: square dup * ;
: cube dup square * ;
: main 5 cube . 3 square . ;`
	plain, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := CompileWithOptions(src, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if countCalls(inlined) >= countCalls(plain) {
		t.Errorf("inlining did not reduce calls: %d vs %d",
			countCalls(inlined), countCalls(plain))
	}
	m1, err := interp.Run(plain, interp.EngineSwitch)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := interp.Run(inlined, interp.EngineSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Out.String() != m2.Out.String() {
		t.Errorf("outputs differ: %q vs %q", m1.Out.String(), m2.Out.String())
	}
	if m2.Steps >= m1.Steps {
		t.Errorf("inlining should reduce executed instructions: %d vs %d", m2.Steps, m1.Steps)
	}
	if m1.Out.String() != "125 9 " {
		t.Errorf("output = %q", m1.Out.String())
	}
}

func TestInlineTransitive(t *testing.T) {
	// cube's body contains square already inlined, and cube itself is
	// short enough to inline into main.
	src := `
: square dup * ;
: cube dup square * ;
: main 2 cube . ;`
	p, err := CompileWithOptions(src, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCalls(p); got != 1 { // only the entry call to main
		t.Errorf("%d calls remain, want 1", got)
	}
}

func TestInlineSkipsControlFlow(t *testing.T) {
	src := `
: abs2 dup 0< if negate then ;
: main -7 abs2 . ;`
	p, err := CompileWithOptions(src, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	// abs2 has control flow and must stay a call.
	if got := countCalls(p); got != 2 {
		t.Errorf("%d calls, want 2 (entry + abs2)", got)
	}
	m, err := interp.Run(p, interp.EngineSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Out.String() != "7 " {
		t.Errorf("output = %q", m.Out.String())
	}
}

func TestInlineRespectsLimit(t *testing.T) {
	src := `
: big 1 1 1 1 1 1 1 1 1 1 + + + + + + + + + ;
: main big . ;`
	p, err := CompileWithOptions(src, Options{Inline: true, InlineLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCalls(p); got != 2 {
		t.Errorf("%d calls, want 2 (big exceeds limit)", got)
	}
	p2, err := CompileWithOptions(src, Options{Inline: true, InlineLimit: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := countCalls(p2); got != 1 {
		t.Errorf("%d calls, want 1 (big inlined)", got)
	}
}

func TestInlineRecursiveWordStaysCall(t *testing.T) {
	src := `
: fib dup 2 < if exit then dup 1- recurse swap 2 - recurse + ;
: main 10 fib . ;`
	p, err := CompileWithOptions(src, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.Run(p, interp.EngineSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Out.String() != "55 " {
		t.Errorf("output = %q", m.Out.String())
	}
}
