package trace

import (
	"testing"

	"stackcache/internal/core"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

func TestRStackEffects(t *testing.T) {
	tr := []vm.Opcode{vm.OpCall, vm.OpToR, vm.OpRFrom, vm.OpExit, vm.OpAdd}
	effs := RStackEffects(tr)
	want := []EffectPair{{0, 1}, {0, 1}, {1, 0}, {1, 0}, {0, 0}}
	for i := range want {
		if effs[i] != want[i] {
			t.Errorf("effects[%d] = %v, want %v", i, effs[i], want[i])
		}
	}
}

// TestRStackConstantOneHasNoEffect reproduces the paper's §6 remark:
// "Most return stack accesses are simple pushes (on calls) or pops (on
// returns); therefore, always keeping one return stack item in a
// register has virtually no effect."
func TestRStackConstantOneHasNoEffect(t *testing.T) {
	// Call-dominated, as the paper's programs are ("every third or
	// fourth instruction is a call or return"); counted do-loops are
	// avoided because they keep their control values on the return
	// stack, which k=1 does help with.
	p, err := forth.Compile(`
: leaf 1+ ;
: mid leaf leaf ;
: main 0 100 begin swap mid swap 1- dup 0= until drop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := interp.Capture(p)
	if err != nil {
		t.Fatal(err)
	}
	effs := RStackEffects(tr)
	c0 := ConstantKCost(effs, 0)
	c1 := ConstantKCost(effs, 1)
	t0 := float64(c0.Loads + c0.Stores)
	t1 := float64(c1.Loads + c1.Stores)
	if t0 == 0 {
		t.Fatal("no return stack traffic in a call-heavy program")
	}
	// "Virtually no effect": within 5%.
	if diff := (t0 - t1) / t0; diff > 0.05 || diff < -0.05 {
		t.Errorf("k=1 changed return-stack traffic by %.1f%%; paper says virtually none", diff*100)
	}
	// A real (varying) cache, by contrast, removes most of it:
	// call/return pairs hit in the cache.
	res, err := Simulate(effs, core.MinimalPolicy{NRegs: 4, OverflowTo: 3})
	if err != nil {
		t.Fatal(err)
	}
	cached := float64(res.Counters.Loads + res.Counters.Stores)
	if cached > t0/2 {
		t.Errorf("return-stack cache should remove most traffic: %0.f vs %0.f", cached, t0)
	}
}

func TestConstantKCostDataStackAgreement(t *testing.T) {
	// For computed (non-manip) opcodes, ConstantKCost must agree with
	// internal/constcache's model. Spot-check add and lit at k=0..3
	// against hand values.
	add := []EffectPair{{2, 1}}
	lit := []EffectPair{{0, 1}}
	for _, tc := range []struct {
		name    string
		effs    []EffectPair
		k       int
		lds, st int64
	}{
		{"add-k0", add, 0, 2, 1},
		{"add-k1", add, 1, 1, 0},
		{"add-k2", add, 2, 1, 0},
		{"lit-k0", lit, 0, 0, 1},
		{"lit-k1", lit, 1, 0, 1},
	} {
		c := ConstantKCost(tc.effs, tc.k)
		if c.Loads != tc.lds || c.Stores != tc.st {
			t.Errorf("%s: loads=%d stores=%d, want %d/%d", tc.name, c.Loads, c.Stores, tc.lds, tc.st)
		}
	}
}

func TestSimulatePrefetch(t *testing.T) {
	p, err := forth.Compile(`: main 0 1000 0 do i + loop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := interp.Capture(p)
	if err != nil {
		t.Fatal(err)
	}
	effs := Effects(tr)
	pol := core.MinimalPolicy{NRegs: 6, OverflowTo: 5}
	plain, err := Simulate(effs, pol)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := SimulatePrefetch(effs, pol, vm.MaxIn)
	if err != nil {
		t.Fatal(err)
	}
	// §3.6: prefetching keeps enough items cached that underflows
	// vanish, at the price of slightly higher memory traffic.
	if pre.Counters.Underflows != 0 {
		t.Errorf("prefetch with minDepth=MaxIn should eliminate underflows, got %d",
			pre.Counters.Underflows)
	}
	if pre.Counters.Loads < plain.Counters.Loads {
		t.Errorf("prefetching cannot reduce loads: %d vs %d",
			pre.Counters.Loads, plain.Counters.Loads)
	}
	if _, err := SimulatePrefetch(effs, core.MinimalPolicy{}, 1); err == nil {
		t.Error("invalid policy accepted")
	}
}
