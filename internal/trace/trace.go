// Package trace analyzes executed-instruction traces: the per-program
// characteristics of the paper's Fig. 20, and the random-walk model of
// Hasegawa & Shigei [HS85] that §6 compares real program behaviour
// against.
package trace

import (
	"fmt"

	"stackcache/internal/core"
	"stackcache/internal/vm"
)

// Stats are the Fig. 20 per-program characteristics, computed from a
// trace with the instruction set's static effects. The model matches
// the paper's measurement conventions: stack loads equal the operand
// fetches of an implementation without caching, stack pointer updates
// happen for every depth-changing instruction, and return-stack
// traffic covers calls, returns and the loop/>r words.
type Stats struct {
	Name         string
	Instructions int64
	// Loads is stack operand loads per instruction (equal to stores
	// per instruction over a balanced run, as in the paper).
	Loads float64
	// Updates is stack pointer updates per instruction.
	Updates float64
	// RLoads is return-stack loads (= stores) per instruction.
	RLoads float64
	// RUpdates is return-stack pointer updates per instruction.
	RUpdates float64
	// Calls is calls per instruction.
	Calls float64
}

// Analyze computes Fig. 20 statistics for a trace.
func Analyze(name string, tr []vm.Opcode) Stats {
	var loads, updates, rloads, rstores, rupdates, calls int64
	for _, op := range tr {
		eff := vm.EffectOf(op)
		loads += int64(eff.In)
		if eff.In != eff.Out {
			updates++
		}
		rloads += int64(eff.RIn)
		rstores += int64(eff.ROut)
		if eff.RIn != eff.ROut {
			rupdates++
		}
		if op == vm.OpCall {
			calls++
		}
	}
	n := float64(len(tr))
	if n == 0 {
		return Stats{Name: name}
	}
	return Stats{
		Name:         name,
		Instructions: int64(len(tr)),
		Loads:        float64(loads) / n,
		Updates:      float64(updates) / n,
		RLoads:       float64(rloads+rstores) / 2 / n,
		RUpdates:     float64(rupdates) / n,
		Calls:        float64(calls) / n,
	}
}

// String renders a Fig. 20 style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s %10d  %5.2f %5.2f %5.2f %5.2f %5.2f",
		s.Name, s.Instructions, s.Loads, s.Updates, s.RLoads, s.RUpdates, s.Calls)
}

// EffectPair is the data-stack effect of one trace entry, the input of
// the cache simulator.
type EffectPair struct {
	In, Out int
}

// Effects reduces a trace to its data-stack effects.
func Effects(tr []vm.Opcode) []EffectPair {
	out := make([]EffectPair, len(tr))
	for i, op := range tr {
		eff := vm.EffectOf(op)
		out[i] = EffectPair{In: eff.In, Out: eff.Out}
	}
	return out
}

// RandomWalk generates n effects under the [HS85] random-walk model:
// pushes and pops "occur equally likely irrespective of previous
// events". Each step is a pure push (0→1) with probability pushProb
// out of 256, otherwise a pure pop (1→0). The generator is a fixed
// linear congruential sequence so experiments are reproducible. The
// walk is clamped so the simulated stack never underflows.
func RandomWalk(n int, pushProb int, seed uint64) []EffectPair {
	s := seed
	depth := 0
	out := make([]EffectPair, n)
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		push := int((s>>33)%256) < pushProb
		if depth == 0 {
			push = true
		}
		if push {
			out[i] = EffectPair{In: 0, Out: 1}
			depth++
		} else {
			out[i] = EffectPair{In: 1, Out: 0}
			depth--
		}
	}
	return out
}

// WalkResult is the outcome of simulating a cache policy over an
// effect sequence.
type WalkResult struct {
	Counters core.Counters
	// RiseAfterOverflow[k]: overflows after which the depth rose at
	// most k above the followup state before the next underflow or
	// overflow (the §6 analysis).
	RiseAfterOverflow map[int]int64
}

// Simulate runs the minimal-organization cache state machine over an
// effect sequence, without executing anything — exactly the state
// walk the paper uses to study overflow behaviour.
func Simulate(effects []EffectPair, pol core.MinimalPolicy) (WalkResult, error) {
	if err := pol.Validate(); err != nil {
		return WalkResult{}, err
	}
	res := WalkResult{RiseAfterOverflow: make(map[int]int64)}
	c := 0
	riseActive := false
	riseBase, riseMax := 0, 0
	endRise := func() {
		if riseActive {
			res.RiseAfterOverflow[riseMax]++
			riseActive = false
		}
	}
	for _, e := range effects {
		tr := pol.Step(c, e.In, e.Out)
		res.Counters.Instructions++
		res.Counters.Dispatches++
		res.Counters.Loads += int64(tr.Loads)
		res.Counters.Stores += int64(tr.Stores)
		res.Counters.Moves += int64(tr.Moves)
		res.Counters.Updates += int64(tr.Updates)
		if tr.Overflow {
			res.Counters.Overflows++
			endRise()
			riseActive = true
			riseBase, riseMax = tr.NewDepth, 0
		}
		if tr.Underflow {
			res.Counters.Underflows++
			endRise()
		}
		c = tr.NewDepth
		if riseActive && c-riseBase > riseMax {
			riseMax = c - riseBase
		}
	}
	endRise()
	return res, nil
}
