package trace

import (
	"stackcache/internal/core"
	"stackcache/internal/vm"
)

// This file covers two side analyses of the paper:
//
//   - return-stack caching (§3.4 "two stacks", §6: "Most return stack
//     accesses are simple pushes (on calls) or pops (on returns);
//     therefore, always keeping one return stack item in a register
//     has virtually no effect");
//   - stack-item prefetching (§3.6: forbid states with too few cached
//     items; "this will cause slightly higher memory traffic" but
//     removes underflow latency).

// RStackEffects reduces a trace to its *return*-stack effects.
func RStackEffects(tr []vm.Opcode) []EffectPair {
	out := make([]EffectPair, len(tr))
	for i, op := range tr {
		eff := vm.EffectOf(op)
		out[i] = EffectPair{In: eff.RIn, Out: eff.ROut}
	}
	return out
}

// ConstantKCost prices an effect sequence under the constant-k
// discipline (k items always in registers), with the positional model
// of internal/constcache restricted to computed effects — adequate for
// the return stack, which has no shuffle instructions.
func ConstantKCost(effects []EffectPair, k int) core.Counters {
	var c core.Counters
	for _, e := range effects {
		x, y := e.In, e.Out
		if x > k {
			c.Loads += int64(x - k)
		}
		if y > k {
			c.Stores += int64(y - k)
		}
		if x != y {
			hi := k - x
			if k-y > hi {
				hi = k - y
			}
			for i := 1; i <= hi; i++ {
				oldIn := x+i <= k
				newIn := y+i <= k
				switch {
				case oldIn && newIn:
					c.Moves++
				case oldIn && !newIn:
					c.Stores++
				case !oldIn && newIn:
					c.Loads++
				}
			}
			c.Updates++
		}
		c.Instructions++
		c.Dispatches++
	}
	return c
}

// SimulatePrefetch is Simulate with the §3.6 prefetching rule: states
// with fewer than minDepth cached items are forbidden; whenever a
// transition would drop below, the missing items are prefetched (one
// load each, one sp update per prefetch event). With minDepth at least
// the maximum instruction arity, underflows disappear entirely.
//
// The simulator does not track the true stack depth, so near the very
// bottom of the stack it slightly overestimates prefetch loads — the
// same approximation the paper's own counting makes.
func SimulatePrefetch(effects []EffectPair, pol core.MinimalPolicy, minDepth int) (WalkResult, error) {
	if err := pol.Validate(); err != nil {
		return WalkResult{}, err
	}
	res := WalkResult{RiseAfterOverflow: make(map[int]int64)}
	c := minDepth
	for _, e := range effects {
		tr := pol.Step(c, e.In, e.Out)
		res.Counters.Instructions++
		res.Counters.Dispatches++
		res.Counters.Loads += int64(tr.Loads)
		res.Counters.Stores += int64(tr.Stores)
		res.Counters.Moves += int64(tr.Moves)
		res.Counters.Updates += int64(tr.Updates)
		if tr.Overflow {
			res.Counters.Overflows++
		}
		if tr.Underflow {
			res.Counters.Underflows++
		}
		c = tr.NewDepth
		if c < minDepth {
			res.Counters.Loads += int64(minDepth - c)
			if !tr.Underflow && !tr.Overflow {
				// The prefetch is a separate memory-stack access.
				res.Counters.Updates++
			}
			c = minDepth
		}
	}
	return res, nil
}
