package trace

import (
	"testing"

	"stackcache/internal/core"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

func capture(t *testing.T, src string) []vm.Opcode {
	t.Helper()
	p, err := forth.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := interp.Capture(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeSimple(t *testing.T) {
	// Hand-checkable trace: lit lit add dot halt plus the entry call
	// and main's exit.
	tr := capture(t, `: main 1 2 + . ;`)
	s := Analyze("t", tr)
	if s.Instructions != int64(len(tr)) {
		t.Errorf("instructions = %d", s.Instructions)
	}
	// Trace: call lit lit add dot exit halt = 7 instructions;
	// loads: add 2 + dot 1 = 3; updates: lit,lit,add,dot = 4.
	if len(tr) != 7 {
		t.Fatalf("trace length = %d, want 7", len(tr))
	}
	if got := s.Loads * 7; got != 3 {
		t.Errorf("total loads = %v, want 3", got)
	}
	if got := s.Updates * 7; got != 4 {
		t.Errorf("total updates = %v, want 4", got)
	}
	if got := s.Calls * 7; got != 1 {
		t.Errorf("total calls = %v, want 1", got)
	}
	// Return stack: call stores 1, exit loads 1 -> (1+1)/2 = 1 access.
	if got := s.RLoads * 7; got != 1 {
		t.Errorf("rloads = %v, want 1", got)
	}
	if got := s.RUpdates * 7; got != 2 {
		t.Errorf("rupdates = %v, want 2", got)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze("empty", nil)
	if s.Instructions != 0 || s.Loads != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestEffects(t *testing.T) {
	tr := []vm.Opcode{vm.OpLit, vm.OpAdd, vm.OpDrop}
	effs := Effects(tr)
	want := []EffectPair{{0, 1}, {2, 1}, {1, 0}}
	for i := range want {
		if effs[i] != want[i] {
			t.Errorf("effects[%d] = %v, want %v", i, effs[i], want[i])
		}
	}
}

func TestRandomWalkProperties(t *testing.T) {
	w := RandomWalk(10000, 128, 42)
	if len(w) != 10000 {
		t.Fatalf("length %d", len(w))
	}
	depth := 0
	pushes := 0
	for _, e := range w {
		if e.In == 0 && e.Out == 1 {
			pushes++
			depth++
		} else if e.In == 1 && e.Out == 0 {
			depth--
		} else {
			t.Fatalf("invalid effect %v", e)
		}
		if depth < 0 {
			t.Fatal("walk underflowed")
		}
	}
	// Roughly balanced at pushProb 128/256.
	if pushes < 4500 || pushes > 6500 {
		t.Errorf("pushes = %d, expected near half", pushes)
	}
	// Determinism.
	w2 := RandomWalk(10000, 128, 42)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("walk not deterministic")
		}
	}
	if RandomWalk(10, 128, 43)[0] != (EffectPair{0, 1}) {
		t.Error("first step from empty stack must push")
	}
}

func TestSimulateWalk(t *testing.T) {
	w := RandomWalk(100000, 140, 7)
	pol := core.MinimalPolicy{NRegs: 4, OverflowTo: 3}
	res, err := Simulate(w, pol)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Instructions != 100000 || c.Dispatches != c.Instructions {
		t.Errorf("counters: %+v", c)
	}
	if c.Overflows == 0 || c.Underflows == 0 {
		t.Errorf("expected traffic on a random walk: %+v", c)
	}
	var rises int64
	for _, n := range res.RiseAfterOverflow {
		rises += n
	}
	if rises != c.Overflows {
		t.Errorf("rise histogram total %d != overflows %d", rises, c.Overflows)
	}
	if _, err := Simulate(w, core.MinimalPolicy{}); err == nil {
		t.Error("invalid policy accepted")
	}
}

// TestRandomWalkDiffersFromRealPrograms reproduces the §6 finding: on
// a random walk, making the overflow followup state emptier reduces
// the number of overflows substantially; on real programs it barely
// does ("the number of overflows is not reduced ... In other words,
// there's a very strong tendency to go down after going up").
func TestRandomWalkDiffersFromRealPrograms(t *testing.T) {
	walk := RandomWalk(200000, 150, 99)
	polFull := core.MinimalPolicy{NRegs: 10, OverflowTo: 10}
	polLow := core.MinimalPolicy{NRegs: 10, OverflowTo: 5}
	wFull, err := Simulate(walk, polFull)
	if err != nil {
		t.Fatal(err)
	}
	wLow, err := Simulate(walk, polLow)
	if err != nil {
		t.Fatal(err)
	}
	if wFull.Counters.Overflows == 0 {
		t.Skip("walk produced no overflows; seed too tame")
	}
	walkRatio := float64(wLow.Counters.Overflows) / float64(wFull.Counters.Overflows)
	if walkRatio > 0.8 {
		t.Errorf("random walk: lowering followup state should cut overflows strongly; ratio %.2f", walkRatio)
	}

	p, err := forth.Compile(`
: inner 1 2 3 + + ;
: work 0 100 0 do inner + loop ;
: main 0 20 0 do work + loop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := interp.Capture(p)
	if err != nil {
		t.Fatal(err)
	}
	real := Effects(tr)
	rFull, err := Simulate(real, polFull)
	if err != nil {
		t.Fatal(err)
	}
	rLow, err := Simulate(real, polLow)
	if err != nil {
		t.Fatal(err)
	}
	if rFull.Counters.Overflows > 0 {
		realRatio := float64(rLow.Counters.Overflows) / float64(rFull.Counters.Overflows)
		if realRatio < walkRatio {
			t.Errorf("real program should respond less to followup lowering than the walk: real %.2f walk %.2f",
				realRatio, walkRatio)
		}
	}
}
