package dyncache

import (
	"strings"
	"testing"
	"testing/quick"

	"stackcache/internal/core"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// forthPrograms is a set of behaviorally diverse programs used for
// differential testing against the baseline interpreters.
var forthPrograms = map[string]string{
	"arith": `: main 1 2 3 4 5 + - * swap / . 10 3 mod . ;`,
	"fib":   `: fib dup 2 < if exit then dup 1- recurse swap 2 - recurse + ; : main 15 fib . ;`,
	"sieve": `
create flags 100 allot
: main 100 0 do 1 flags i + c! loop
  10 2 do flags i + c@ if 100 i dup * do 0 flags i + c! j +loop then loop
  0 100 2 do flags i + c@ if 1+ then loop . ;`,
	"deepstack": `: main 1 2 3 4 5 6 7 8 9 10 + + + + + + + + + . ;`,
	"strings":   `: main s" abc" type ." xyz" cr 65 emit ;`,
	"loops":     `: main 0 100 0 do i + loop . 0 begin 1+ dup 10 >= until . ;`,
	"memory": `
variable a variable b
: main 7 a ! 35 b ! a @ b @ + . a @ b +! b @ . ;`,
	"manips": `: main 1 2 swap over rot dup 2dup + + + + + . 5 6 nip 7 tuck + + . ;`,
	"rstack": `: main 42 >r 1 2 + r> + . 9 >r r@ r> + . ;`,
	"depth":  `: main 1 2 3 depth . . . . ;`,
}

func compileAll(t *testing.T) map[string]*vm.Program {
	t.Helper()
	progs := make(map[string]*vm.Program)
	for name, src := range forthPrograms {
		p, err := forth.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		progs[name] = p
	}
	return progs
}

// policies covers the Fig. 22 design space corners.
var testPolicies = []core.MinimalPolicy{
	{NRegs: 1, OverflowTo: 1},
	{NRegs: 2, OverflowTo: 1},
	{NRegs: 2, OverflowTo: 2},
	{NRegs: 4, OverflowTo: 2},
	{NRegs: 4, OverflowTo: 4},
	{NRegs: 6, OverflowTo: 3},
	{NRegs: 6, OverflowTo: 6},
	{NRegs: 10, OverflowTo: 7},
}

func TestMatchesBaselineOnAllPrograms(t *testing.T) {
	progs := compileAll(t)
	for name, p := range progs {
		ref, err := interp.Run(p, interp.EngineSwitch)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		want := ref.Snapshot()
		for _, pol := range testPolicies {
			res, err := Run(p, pol)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, pol, err)
			}
			if got := res.Machine.Snapshot(); !want.Equal(got) {
				t.Errorf("%s %+v: snapshot mismatch\nwant stack %v out %q\ngot  stack %v out %q",
					name, pol, want.Stack, want.Output, got.Stack, got.Output)
			}
		}
	}
}

// TestDeepHaltStackOverflows is the regression for the halt-flush
// panic: the register cache extends the logical stack beyond
// Machine.Stack's capacity, so a program can halt with more cells than
// the flush target holds. Every variant must report a clean
// stack-overflow error instead of indexing past m.Stack.
func TestDeepHaltStackOverflows(t *testing.T) {
	src := ": main " + strings.Repeat("1 ", interp.DefaultStackCap+1) + ";"
	p, err := forth.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range testPolicies {
		if _, err := Run(p, pol); err == nil || !strings.Contains(err.Error(), "stack overflow") {
			t.Errorf("minimal %+v: err = %v, want stack overflow", pol, err)
		}
		rot := core.RotatingPolicy{NRegs: pol.NRegs, OverflowTo: pol.OverflowTo}
		if _, err := RunRotating(p, rot); err == nil || !strings.Contains(err.Error(), "stack overflow") {
			t.Errorf("rotating %+v: err = %v, want stack overflow", rot, err)
		}
	}
	two := TwoStackPolicy{NRegs: 4, OverflowTo: 2, RMax: 2}
	if _, err := RunTwoStacks(p, two); err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("twostacks %+v: err = %v, want stack overflow", two, err)
	}
}

func TestCountersBasicSanity(t *testing.T) {
	p, err := forth.Compile(`: main 100 0 do i drop loop ;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Instructions == 0 || c.Dispatches != c.Instructions {
		t.Errorf("dispatches %d != instructions %d", c.Dispatches, c.Instructions)
	}
	// Loads+stores imply updates and vice versa.
	if (c.Loads+c.Stores > 0) != (c.Updates > 0) {
		t.Errorf("traffic/update mismatch: %+v", c)
	}
}

func TestStraightLinePushesOverflow(t *testing.T) {
	// 9 literals with 4 registers must overflow; with followup=full
	// each overflow spills one item.
	b := vm.NewBuilder()
	for i := 0; i < 9; i++ {
		b.Lit(vm.Cell(i))
	}
	for i := 0; i < 8; i++ {
		b.Emit(vm.OpAdd)
	}
	b.Emit(vm.OpDot)
	b.Emit(vm.OpHalt)
	p := b.MustBuild()

	res, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Out.String() != "36 " {
		t.Errorf("output = %q", res.Machine.Out.String())
	}
	if res.Counters.Overflows != 5 {
		t.Errorf("overflows = %d, want 5", res.Counters.Overflows)
	}
	// The adds drain the cache; once empty, underflows load from
	// memory.
	if res.Counters.Underflows == 0 {
		t.Error("expected underflows")
	}
	if res.Counters.Loads != res.Counters.Stores {
		t.Errorf("loads %d != stores %d for balanced program",
			res.Counters.Loads, res.Counters.Stores)
	}
}

func TestFullStateFollowupMinimizesTraffic(t *testing.T) {
	// §3.3: the full state as overflow followup minimizes memory
	// traffic; an emptier followup trades stores for fewer overflows.
	p, err := forth.Compile(`
: f 1 2 3 4 5 + + + + ;
: main 0 50 0 do f + loop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Counters.Stores > low.Counters.Stores {
		t.Errorf("full-state followup should not store more: full=%d low=%d",
			full.Counters.Stores, low.Counters.Stores)
	}
	if full.Counters.Overflows < low.Counters.Overflows {
		t.Errorf("full-state followup should overflow at least as often: full=%d low=%d",
			full.Counters.Overflows, low.Counters.Overflows)
	}
}

func TestMoreRegistersReduceOverhead(t *testing.T) {
	// The paper's central Fig. 22/26 shape: overhead shrinks as
	// registers are added.
	p, err := forth.Compile(forthPrograms["sieve"])
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, n := range []int{1, 2, 4, 8} {
		res, err := Run(p, core.MinimalPolicy{NRegs: n, OverflowTo: n})
		if err != nil {
			t.Fatal(err)
		}
		over := res.Counters.AccessPerInstruction(core.DefaultCost)
		if prev >= 0 && over > prev+1e-9 {
			t.Errorf("overhead rose from %.4f to %.4f at %d regs", prev, over, n)
		}
		prev = over
	}
}

func TestRiseHistogramRecorded(t *testing.T) {
	p, err := forth.Compile(forthPrograms["fib"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, core.MinimalPolicy{NRegs: 2, OverflowTo: 2})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range res.RiseAfterOverflow {
		total += n
	}
	if res.Counters.Overflows == 0 {
		t.Fatal("expected overflows in fib with 2 registers")
	}
	if total == 0 || total > res.Counters.Overflows {
		t.Errorf("rise histogram total %d vs overflows %d", total, res.Counters.Overflows)
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	p, err := forth.Compile(`: main ;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, core.MinimalPolicy{NRegs: 0, OverflowTo: 0}); err == nil {
		t.Error("expected policy validation error")
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	b := vm.NewBuilder()
	b.Lit(1)
	b.Lit(0)
	b.Emit(vm.OpDiv)
	b.Emit(vm.OpHalt)
	p := b.MustBuild()
	_, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestStackUnderflowDetected(t *testing.T) {
	b := vm.NewBuilder()
	b.Emit(vm.OpAdd)
	b.Emit(vm.OpHalt)
	p := b.MustBuild()
	_, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	b := vm.NewBuilder()
	b.Label("spin")
	b.BranchTo("spin")
	p := b.MustBuild()
	// Run with a machine-level limit by invoking through a machine
	// hook: Run constructs its own machine, so use a tiny program with
	// a long loop instead.
	b2 := vm.NewBuilder()
	b2.Lit(0)
	b2.Label("top")
	b2.Emit(vm.OpOnePlus)
	b2.Emit(vm.OpDup)
	b2.EmitArg(vm.OpLitAdd, -1000)
	b2.BranchZeroTo("done")
	b2.BranchTo("top")
	b2.Label("done")
	b2.Emit(vm.OpDrop)
	b2.Emit(vm.OpHalt)
	p2 := b2.MustBuild()
	if _, err := Run(p2, core.MinimalPolicy{NRegs: 3, OverflowTo: 3}); err != nil {
		t.Fatalf("bounded loop: %v", err)
	}
	_ = p
}

// TestPropertyMatchesBaseline runs random straight-line programs under
// random policies and checks behavioural equivalence with the switch
// interpreter.
func TestPropertyMatchesBaseline(t *testing.T) {
	safeOps := []vm.Opcode{
		vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpMin, vm.OpMax, vm.OpXor,
		vm.OpDup, vm.OpDrop, vm.OpSwap, vm.OpOver, vm.OpRot, vm.OpTuck,
		vm.OpTwoDup, vm.OpTwoDrop, vm.OpNip, vm.OpMinusRot,
		vm.OpOnePlus, vm.OpNegate, vm.OpZeroEq, vm.OpToR, vm.OpRFrom,
	}
	f := func(lits []int64, choices []uint8, nregs, fw uint8) bool {
		n := int(nregs)%8 + 1
		pol := core.MinimalPolicy{NRegs: n, OverflowTo: int(fw)%n + 1}
		b := vm.NewBuilder()
		depth, rdepth := 0, 0
		for i, v := range lits {
			if i >= 10 {
				break
			}
			b.Lit(vm.Cell(v))
			depth++
		}
		for depth < 4 {
			b.Lit(1)
			depth++
		}
		for _, ch := range choices {
			op := safeOps[int(ch)%len(safeOps)]
			eff := vm.EffectOf(op)
			if depth < eff.In || eff.RIn > rdepth || depth+eff.NetEffect() > 40 {
				continue
			}
			b.Emit(op)
			depth += eff.NetEffect()
			rdepth += eff.ROut - eff.RIn
		}
		// Drain the return stack to keep the program well formed.
		for ; rdepth > 0; rdepth-- {
			b.Emit(vm.OpRFrom)
			depth++
		}
		b.Emit(vm.OpHalt)
		p, err := b.Build()
		if err != nil {
			return false
		}
		ref, err := interp.Run(p, interp.EngineSwitch)
		if err != nil {
			return false
		}
		res, err := Run(p, pol)
		if err != nil {
			return false
		}
		return ref.Snapshot().Equal(res.Machine.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
