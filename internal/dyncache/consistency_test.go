package dyncache

import (
	"testing"

	"stackcache/internal/core"
	"stackcache/internal/interp"
	"stackcache/internal/trace"
)

// TestDyncacheCountersMatchTraceSimulation cross-validates the two
// independent implementations of the minimal organization's cost
// accounting: the executing engine (dyncache.Run) and the pure
// state-walk simulator (trace.Simulate) must produce identical
// counters for the same program and policy.
func TestDyncacheCountersMatchTraceSimulation(t *testing.T) {
	progs := compileAll(t)
	policies := []core.MinimalPolicy{
		{NRegs: 2, OverflowTo: 1},
		{NRegs: 4, OverflowTo: 4},
		{NRegs: 6, OverflowTo: 3},
	}
	for name, p := range progs {
		tr, _, err := interp.Capture(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		effs := trace.Effects(tr)
		for _, pol := range policies {
			eng, err := Run(p, pol)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, pol, err)
			}
			sim, err := trace.Simulate(effs, pol)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, pol, err)
			}
			e, s := eng.Counters, sim.Counters
			if e.Loads != s.Loads || e.Stores != s.Stores ||
				e.Updates != s.Updates ||
				e.Overflows != s.Overflows || e.Underflows != s.Underflows ||
				e.Instructions != s.Instructions {
				t.Errorf("%s %+v: engine %+v != simulator %+v", name, pol, e, s)
			}
			// Moves differ only in how stack-manipulation mappings are
			// priced: the simulator sees plain (in,out) effects while
			// the engine knows the mapping. The engine's moves must
			// not be less than zero more than the simulator's... both
			// count the same overflow shifts; manip shuffles are
			// engine-only, so engine >= simulator is the invariant.
			if e.Moves < s.Moves {
				t.Errorf("%s %+v: engine moves %d < simulator moves %d",
					name, pol, e.Moves, s.Moves)
			}
		}
	}
}
