// Package dyncache implements dynamic stack caching (paper §4): the
// interpreter keeps track of the cache state, holding the top cache
// depth items of the data stack in a register file. The organization
// is the minimal one (§3.2) — one state per number of cached items,
// bottom-anchored — with the §3.1 stack-pointer-update elimination and
// a configurable overflow followup state (§3.3), exactly the design
// space the paper's Fig. 22/23 sweeps explore.
//
// In the paper the cache state selects one of several copies of the
// whole interpreter and the real-machine program counter encodes the
// state; Go cannot replicate an interpreter per state, so here the
// state is an explicit variable and the costs the replication would
// save or incur are accounted through core.Counters with the paper's
// cost model. Semantics are delegated to interp.Apply, so results are
// bit-identical to the baseline interpreters — the engine's tests
// verify that on every workload.
package dyncache

import (
	"stackcache/internal/core"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// Result is the outcome of a dynamically stack-cached execution.
type Result struct {
	// Machine holds the final machine state. Its Stack contains the
	// full data stack (cached items are flushed at halt), so its
	// Snapshot is directly comparable with a baseline run.
	Machine *interp.Machine

	// Counters is the argument-access cost of the run under the
	// paper's model.
	Counters core.Counters

	// RiseAfterOverflow[k] counts overflow events after which the
	// cache depth rose at most k items above the overflow followup
	// state before the next underflow, further overflow, or the end of
	// the run. The paper's §6 random-walk discussion ("there's a very
	// strong tendency to go down after going up") is this histogram.
	RiseAfterOverflow map[int]int64
}

// Run executes p under dynamic stack caching with the given policy.
// Budgets and program inputs come through the machine: callers needing
// them configure a machine with interp.ExecSpec and use RunOn.
func Run(p *vm.Program, pol core.MinimalPolicy) (*Result, error) {
	return RunOn(interp.NewMachine(p), pol)
}

// RunOn executes the machine's current program under dynamic stack
// caching without allocating a new machine; the step budget is the
// machine's MaxSteps. The pooled-execution service layer rebinds a
// recycled machine (interp.Machine.Rebind) and calls this.
func RunOn(m *interp.Machine, pol core.MinimalPolicy) (*Result, error) {
	table, err := core.BuildTable(pol)
	if err != nil {
		return nil, err
	}
	p := m.Prog
	res := &Result{Machine: m, RiseAfterOverflow: make(map[int]int64)}

	regs := make([]vm.Cell, pol.NRegs)
	c := 0 // cached items; regs[0..c-1], bottom-anchored

	var args, outs [8]vm.Cell
	conceptual := make([]vm.Cell, pol.NRegs+vm.MaxOut)

	// Rise tracking for the random-walk analysis.
	riseActive := false
	riseBase, riseMax := 0, 0
	endRise := func() {
		if riseActive {
			res.RiseAfterOverflow[riseMax]++
			riseActive = false
		}
	}

	code := p.Code
	limit := int64(interp.DefaultMaxSteps)
	if m.MaxSteps > 0 {
		limit = m.MaxSteps
	}

	// Proved programs (vm.Analyze via the machine's Facts) skip the
	// engine loop's data-stack bounds branches; everything Apply checks
	// (division, memory, return stack, output) stays dynamic.
	checked := !m.ElideChecks()

	// flush spills the cached items into the machine stack, for halt
	// and error paths. The cache extends the stack beyond m.Stack's
	// capacity, so a deep-stack halt can overflow here; error paths
	// ignore the returned error (the original failure wins) and drop
	// whatever did not fit.
	flush := func() error {
		for i := 0; i < c; i++ {
			if checked && m.SP == len(m.Stack) {
				c = 0
				return failAt(m, "stack overflow")
			}
			m.Stack[m.SP] = regs[i]
			m.SP++
		}
		c = 0
		return nil
	}

	for {
		// Same dispatch-order contract as the baseline interpreters:
		// pc bounds, step limit, opcode validity, then execution — so
		// malformed programs fail with identical error classes.
		if m.PC < 0 || m.PC >= len(code) {
			flush()
			return res, interp.PCError(m.PC)
		}
		if m.Steps >= limit {
			flush()
			return res, failAt(m, "step limit exceeded")
		}
		ins := code[m.PC]
		if !ins.Op.Valid() {
			flush()
			return res, failAt(m, "invalid opcode")
		}
		eff := vm.EffectOf(ins.Op)
		m.Steps++
		res.Counters.Instructions++
		res.Counters.Dispatches++

		// The (state × opcode) table lookup is the software analog of
		// the paper's jump into the interpreter copy for the current
		// cache state.
		tr := table.Lookup(c, ins.Op)
		res.Counters.Loads += int64(tr.Loads)
		res.Counters.Stores += int64(tr.Stores)
		res.Counters.Moves += int64(tr.Moves)
		res.Counters.Updates += int64(tr.Updates)
		if tr.Overflow {
			res.Counters.Overflows++
			endRise()
			riseActive = true
			riseBase, riseMax = tr.NewDepth, 0
		}
		if tr.Underflow {
			res.Counters.Underflows++
			endRise()
		}

		// Mechanics: gather arguments (deepest from memory on
		// underflow), apply semantics, place results (spilling the
		// deepest items on overflow).
		fromRegs := eff.In
		fromMem := 0
		if fromRegs > c {
			fromMem = fromRegs - c
			fromRegs = c
		}
		if checked && fromMem > m.SP {
			flush()
			return res, failAt(m, "stack underflow")
		}
		copy(args[:fromMem], m.Stack[m.SP-fromMem:m.SP])
		m.SP -= fromMem
		copy(args[fromMem:eff.In], regs[c-fromRegs:c])
		rem := c - fromRegs

		nout, err := interp.Apply(m, ins, args[:eff.In], outs[:], m.SP+rem)
		if err != nil {
			if err == interp.ErrHalt {
				endRise()
				c = rem
				return res, flush()
			}
			c = rem
			flush()
			return res, err
		}

		newDepth := rem + nout
		if newDepth <= pol.NRegs && newDepth == tr.NewDepth {
			// Fast path: results go straight on top of the survivors.
			copy(regs[rem:], outs[:nout])
			c = newDepth
		} else {
			// Overflow (or a followup state below capacity): build the
			// conceptual stack and spill its bottom to memory.
			copy(conceptual[:rem], regs[:rem])
			copy(conceptual[rem:], outs[:nout])
			spill := newDepth - tr.NewDepth
			for i := 0; i < spill; i++ {
				if checked && m.SP == len(m.Stack) {
					flush()
					return res, failAt(m, "stack overflow")
				}
				m.Stack[m.SP] = conceptual[i]
				m.SP++
			}
			copy(regs[:tr.NewDepth], conceptual[spill:newDepth])
			c = tr.NewDepth
		}

		if riseActive {
			if rise := c - riseBase; rise > riseMax {
				riseMax = rise
			}
		}
	}
}

func failAt(m *interp.Machine, msg string) error {
	// m.PC can point out of range when a failure is reported after a
	// control transfer (e.g. OpExit popping a corrupt return address);
	// the error constructor must not index Code with it.
	op := vm.OpNop
	if m.PC >= 0 && m.PC < len(m.Prog.Code) {
		// A super opcode canonicalizes to its first constituent — the
		// opcode the unquickened baseline reports at this pc.
		op = vm.CanonicalInstr(m.Prog.Code[m.PC]).Op
	}
	return &interp.RuntimeError{PC: m.PC, Op: op, Msg: msg}
}
