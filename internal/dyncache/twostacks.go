package dyncache

import (
	"fmt"

	"stackcache/internal/core"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// TwoStackPolicy is the "two stacks" organization of §3.4 and Fig. 18:
// the data stack and the return stack are "treated in a unified
// manner, sharing the same set of registers" — up to RMax return-stack
// items are cached in registers taken from the same file the data
// cache uses, in a minimal organization each (states (d, r) with
// d + r ≤ NRegs, r ≤ RMax; Fig. 18's 3n states for RMax = 2).
type TwoStackPolicy struct {
	// NRegs is the shared register file size.
	NRegs int

	// RMax is the most return-stack items cached (Fig. 18 uses 2).
	RMax int

	// OverflowTo is the data cache's overflow followup depth (clamped
	// to the capacity left by the return cache).
	OverflowTo int
}

// Validate checks the policy.
func (p TwoStackPolicy) Validate() error {
	if p.NRegs < 1 || p.NRegs > 255 {
		return fmt.Errorf("dyncache: NRegs %d out of range [1,255]", p.NRegs)
	}
	if p.RMax < 0 || p.RMax >= p.NRegs {
		return fmt.Errorf("dyncache: RMax %d out of range [0,%d)", p.RMax, p.NRegs)
	}
	if p.OverflowTo < 1 || p.OverflowTo > p.NRegs {
		return fmt.Errorf("dyncache: OverflowTo %d out of range [1,%d]", p.OverflowTo, p.NRegs)
	}
	return nil
}

// States counts the organization's states: pairs (d, r) with
// d + r ≤ NRegs, r ≤ RMax — Fig. 18's 3n for RMax = 2, n ≥ 2.
func (p TwoStackPolicy) States() int {
	count := 0
	for r := 0; r <= p.RMax; r++ {
		for d := 0; d+r <= p.NRegs; d++ {
			count++
		}
	}
	return count
}

// TwoStackResult extends Result with the return-stack cache's own
// counters (the paper's Fig. 20 keeps the two stacks' traffic
// separate).
type TwoStackResult struct {
	Result
	RCounters core.Counters
}

// RunTwoStacks executes p with both stacks cached in the shared
// register file. Data-stack mechanics are exact (identical results to
// the baseline); the return-stack cache is accounted with the same
// minimal-organization transition rules, with the data cache's
// capacity shrunk by the cached return items.
func RunTwoStacks(p *vm.Program, pol TwoStackPolicy) (*TwoStackResult, error) {
	return RunTwoStacksOn(interp.NewMachine(p), pol)
}

// RunTwoStacksOn executes the machine's current program with both
// stacks cached, without allocating a new machine; the step budget is
// the machine's MaxSteps. Pooled-execution entry point.
func RunTwoStacksOn(m *interp.Machine, pol TwoStackPolicy) (*TwoStackResult, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	p := m.Prog
	res := &TwoStackResult{Result: Result{Machine: m, RiseAfterOverflow: make(map[int]int64)}}

	regs := make([]vm.Cell, pol.NRegs)
	c := 0 // cached data items
	r := 0 // cached return items (model only; values live in m.RSt)

	var args, outs [8]vm.Cell
	conceptual := make([]vm.Cell, pol.NRegs+vm.MaxOut)

	code := p.Code
	limit := int64(interp.DefaultMaxSteps)
	if m.MaxSteps > 0 {
		limit = m.MaxSteps
	}

	// See RunOn: proved programs skip the loop's data-stack bounds
	// branches.
	checked := !m.ElideChecks()

	// flush spills the cached items into the machine stack; see the
	// comment in RunOn — a deep-stack halt can overflow here, and
	// error paths ignore the returned error.
	flush := func() error {
		for i := 0; i < c; i++ {
			if checked && m.SP == len(m.Stack) {
				c = 0
				return failAt(m, "stack overflow")
			}
			m.Stack[m.SP] = regs[i]
			m.SP++
		}
		c = 0
		return nil
	}

	for {
		if m.PC < 0 || m.PC >= len(code) {
			flush()
			return res, interp.PCError(m.PC)
		}
		if m.Steps >= limit {
			flush()
			return res, failAt(m, "step limit exceeded")
		}
		ins := code[m.PC]
		if !ins.Op.Valid() {
			flush()
			return res, failAt(m, "invalid opcode")
		}
		eff := vm.EffectOf(ins.Op)
		m.Steps++
		res.Counters.Instructions++
		res.Counters.Dispatches++

		// Return-stack cache model: pops then pushes, capped at RMax
		// and at the space the data cache leaves free.
		if eff.RIn > 0 || eff.ROut > 0 {
			rTraffic := false
			if eff.RIn > r {
				res.RCounters.Loads += int64(eff.RIn - r)
				r = 0
				rTraffic = true
			} else {
				r -= eff.RIn
			}
			r += eff.ROut
			rCap := pol.RMax
			if free := pol.NRegs - c; free < rCap {
				rCap = free
			}
			if rCap < 0 {
				rCap = 0
			}
			if r > rCap {
				res.RCounters.Stores += int64(r - rCap)
				r = rCap
				rTraffic = true
			}
			if rTraffic {
				res.RCounters.Updates++
			}
			res.RCounters.Instructions++
		}

		// Data-stack cache: capacity is what the return cache leaves.
		cap := pol.NRegs - r
		f := pol.OverflowTo
		if f > cap {
			f = cap
		}
		if f < 1 {
			f = 1
			if cap < 1 {
				// Degenerate: the return cache filled the file; give
				// the data stack one register back.
				res.RCounters.Stores++
				r--
				cap = 1
			}
		}
		dataPol := core.MinimalPolicy{NRegs: cap, OverflowTo: f}
		var tr core.Transition
		if eff.IsManip() {
			tr = dataPol.StepManip(c, eff.In, eff.Map)
		} else {
			tr = dataPol.Step(c, eff.In, eff.Out)
		}
		res.Counters.Loads += int64(tr.Loads)
		res.Counters.Stores += int64(tr.Stores)
		res.Counters.Moves += int64(tr.Moves)
		res.Counters.Updates += int64(tr.Updates)
		if tr.Overflow {
			res.Counters.Overflows++
		}
		if tr.Underflow {
			res.Counters.Underflows++
		}

		// Mechanics, identical to Run.
		fromRegs := eff.In
		fromMem := 0
		if fromRegs > c {
			fromMem = fromRegs - c
			fromRegs = c
		}
		if checked && fromMem > m.SP {
			flush()
			return res, failAt(m, "stack underflow")
		}
		copy(args[:fromMem], m.Stack[m.SP-fromMem:m.SP])
		m.SP -= fromMem
		copy(args[fromMem:eff.In], regs[c-fromRegs:c])
		rem := c - fromRegs

		nout, err := interp.Apply(m, ins, args[:eff.In], outs[:], m.SP+rem)
		if err != nil {
			if err == interp.ErrHalt {
				c = rem
				return res, flush()
			}
			c = rem
			flush()
			return res, err
		}

		newDepth := rem + nout
		if newDepth <= cap && newDepth == tr.NewDepth {
			copy(regs[rem:], outs[:nout])
			c = newDepth
		} else {
			copy(conceptual[:rem], regs[:rem])
			copy(conceptual[rem:], outs[:nout])
			spill := newDepth - tr.NewDepth
			for i := 0; i < spill; i++ {
				if checked && m.SP == len(m.Stack) {
					flush()
					return res, failAt(m, "stack overflow")
				}
				m.Stack[m.SP] = conceptual[i]
				m.SP++
			}
			copy(regs[:tr.NewDepth], conceptual[spill:newDepth])
			c = tr.NewDepth
		}
	}
}
