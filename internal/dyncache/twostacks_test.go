package dyncache

import (
	"testing"

	"stackcache/internal/core"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
)

func TestTwoStacksMatchesBaselineOnAllPrograms(t *testing.T) {
	policies := []TwoStackPolicy{
		{NRegs: 2, RMax: 1, OverflowTo: 1},
		{NRegs: 4, RMax: 2, OverflowTo: 2},
		{NRegs: 6, RMax: 2, OverflowTo: 4},
		{NRegs: 8, RMax: 2, OverflowTo: 6},
	}
	progs := compileAll(t)
	for name, p := range progs {
		ref, err := interp.Run(p, interp.EngineSwitch)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		want := ref.Snapshot()
		for _, pol := range policies {
			res, err := RunTwoStacks(p, pol)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, pol, err)
			}
			if got := res.Machine.Snapshot(); !want.Equal(got) {
				t.Errorf("%s %+v: snapshot mismatch", name, pol)
			}
		}
	}
}

func TestTwoStacksStatesMatchFig18(t *testing.T) {
	org, _ := core.OrganizationByName("two stacks")
	for n := 2; n <= 8; n++ {
		pol := TwoStackPolicy{NRegs: n, RMax: 2, OverflowTo: 1}
		if got, want := int64(pol.States()), org.Count(n); got != want {
			t.Errorf("States(%d) = %d, want Fig.18's %d", n, got, want)
		}
	}
}

func TestTwoStacksReducesReturnTraffic(t *testing.T) {
	p, err := forth.Compile(`
: leaf 1+ ;
: mid leaf leaf ;
: outer mid mid ;
: main 0 500 begin swap outer swap 1- dup 0= until drop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTwoStacks(p, TwoStackPolicy{NRegs: 6, RMax: 2, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The return cache must absorb most call/return pairs: leaf calls
	// hit the cached top.
	rTraffic := res.RCounters.Loads + res.RCounters.Stores
	if res.RCounters.Instructions == 0 {
		t.Fatal("no return-stack activity recorded")
	}
	// Without caching, every call stores and every exit loads: traffic
	// equals the number of return-stack instructions (one access
	// each). The cache should cut it by more than half.
	if rTraffic*2 > res.RCounters.Instructions {
		t.Errorf("return cache absorbed too little: %d traffic on %d rstack instructions",
			rTraffic, res.RCounters.Instructions)
	}
}

func TestTwoStacksPolicyValidation(t *testing.T) {
	bad := []TwoStackPolicy{
		{NRegs: 0, RMax: 0, OverflowTo: 0},
		{NRegs: 4, RMax: 4, OverflowTo: 1}, // RMax must leave data room
		{NRegs: 4, RMax: -1, OverflowTo: 1},
		{NRegs: 4, RMax: 2, OverflowTo: 5},
	}
	for _, pol := range bad {
		if err := pol.Validate(); err == nil {
			t.Errorf("policy %+v should be invalid", pol)
		}
	}
	p, err := forth.Compile(`: main ;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTwoStacks(p, TwoStackPolicy{}); err == nil {
		t.Error("invalid policy accepted")
	}
}

// TestTwoStacksVsSeparate compares sharing against a data-only cache
// of the full file: sharing trades a little data-cache capacity for a
// large cut in return-stack traffic on call-heavy code.
func TestTwoStacksVsSeparate(t *testing.T) {
	p, err := forth.Compile(`
: l3 1+ ;
: l2 l3 l3 ;
: l1 l2 l2 ;
: main 0 200 begin swap l1 swap 1- dup 0= until drop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunTwoStacks(p, TwoStackPolicy{NRegs: 6, RMax: 2, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	dataOnly, err := Run(p, core.MinimalPolicy{NRegs: 6, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Without a return cache, each rstack op touches memory once.
	rUncached := shared.RCounters.Instructions
	sharedTotal := shared.Counters.AccessCycles(core.DefaultCost) +
		shared.RCounters.AccessCycles(core.DefaultCost)
	separateTotal := dataOnly.Counters.AccessCycles(core.DefaultCost) + float64(rUncached)
	if sharedTotal >= separateTotal {
		t.Errorf("sharing should win on call-heavy code: shared %.0f vs separate %.0f",
			sharedTotal, separateTotal)
	}
}
