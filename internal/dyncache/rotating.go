package dyncache

import (
	"stackcache/internal/core"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// RunRotating executes p under dynamic stack caching with the
// overflow-move-optimized organization of §3.3 (core.RotatingPolicy):
// the register file is treated as a ring, the cache-bottom anchor
// rotates on overflow, and spills therefore move nothing. The state is
// (cached count, base register) — n²+1 states, the second row of
// Fig. 18.
func RunRotating(p *vm.Program, pol core.RotatingPolicy) (*Result, error) {
	return RunRotatingOn(interp.NewMachine(p), pol)
}

// RunRotatingOn executes the machine's current program under the
// rotating organization without allocating a new machine; the step
// budget is the machine's MaxSteps. Pooled-execution entry point.
func RunRotatingOn(m *interp.Machine, pol core.RotatingPolicy) (*Result, error) {
	table, err := core.BuildRotatingTable(pol)
	if err != nil {
		return nil, err
	}
	p := m.Prog
	res := &Result{Machine: m, RiseAfterOverflow: make(map[int]int64)}

	n := pol.NRegs
	regs := make([]vm.Cell, n)
	base, c := 0, 0 // cached item at offset r lives in regs[(base+r)%n]

	var args, outs [8]vm.Cell

	riseActive := false
	riseBase, riseMax := 0, 0
	endRise := func() {
		if riseActive {
			res.RiseAfterOverflow[riseMax]++
			riseActive = false
		}
	}

	code := p.Code
	limit := int64(interp.DefaultMaxSteps)
	if m.MaxSteps > 0 {
		limit = m.MaxSteps
	}

	at := func(off int) *vm.Cell { return &regs[(base+off)%n] }

	// See RunOn: proved programs skip the loop's data-stack bounds
	// branches.
	checked := !m.ElideChecks()

	// flush spills the cached items into the machine stack; see the
	// comment in RunOn — a deep-stack halt can overflow here, and
	// error paths ignore the returned error.
	flush := func() error {
		for i := 0; i < c; i++ {
			if checked && m.SP == len(m.Stack) {
				c = 0
				return failAt(m, "stack overflow")
			}
			m.Stack[m.SP] = *at(i)
			m.SP++
		}
		c = 0
		return nil
	}

	for {
		if m.PC < 0 || m.PC >= len(code) {
			flush()
			return res, interp.PCError(m.PC)
		}
		if m.Steps >= limit {
			flush()
			return res, failAt(m, "step limit exceeded")
		}
		ins := code[m.PC]
		if !ins.Op.Valid() {
			flush()
			return res, failAt(m, "invalid opcode")
		}
		eff := vm.EffectOf(ins.Op)
		m.Steps++
		res.Counters.Instructions++
		res.Counters.Dispatches++

		tr := table.Lookup(c, ins.Op)
		res.Counters.Loads += int64(tr.Loads)
		res.Counters.Stores += int64(tr.Stores)
		res.Counters.Moves += int64(tr.Moves)
		res.Counters.Updates += int64(tr.Updates)
		if tr.Overflow {
			res.Counters.Overflows++
			endRise()
			riseActive = true
			riseBase, riseMax = tr.NewDepth, 0
		}
		if tr.Underflow {
			res.Counters.Underflows++
			endRise()
		}

		// Gather arguments.
		fromRegs := eff.In
		fromMem := 0
		if fromRegs > c {
			fromMem = fromRegs - c
			fromRegs = c
		}
		if checked && fromMem > m.SP {
			flush()
			return res, failAt(m, "stack underflow")
		}
		copy(args[:fromMem], m.Stack[m.SP-fromMem:m.SP])
		m.SP -= fromMem
		for i := 0; i < fromRegs; i++ {
			args[fromMem+i] = *at(c - fromRegs + i)
		}
		rem := c - fromRegs

		nout, err := interp.Apply(m, ins, args[:eff.In], outs[:], m.SP+rem)
		if err != nil {
			if err == interp.ErrHalt {
				endRise()
				c = rem
				return res, flush()
			}
			c = rem
			flush()
			return res, err
		}

		newDepth := rem + nout
		if newDepth <= n && newDepth == tr.NewDepth {
			for i := 0; i < nout; i++ {
				*at(rem + i) = outs[i]
			}
			c = newDepth
		} else {
			// Overflow: spill the deepest items by rotating the base;
			// survivors keep their registers.
			spill := newDepth - tr.NewDepth
			spillOld := spill
			if spillOld > rem {
				spillOld = rem
			}
			for i := 0; i < spillOld; i++ {
				if checked && m.SP == len(m.Stack) {
					flush()
					return res, failAt(m, "stack overflow")
				}
				m.Stack[m.SP] = *at(i)
				m.SP++
			}
			// Excess results beyond the register file (tiny caches).
			for i := 0; i < spill-spillOld; i++ {
				if checked && m.SP == len(m.Stack) {
					flush()
					return res, failAt(m, "stack overflow")
				}
				m.Stack[m.SP] = outs[i]
				m.SP++
			}
			base = (base + spillOld) % n
			c = rem - spillOld
			for i := spill - spillOld; i < nout; i++ {
				*at(c) = outs[i]
				c++
			}
		}

		if riseActive {
			if rise := c - riseBase; rise > riseMax {
				riseMax = rise
			}
		}
	}
}
