package dyncache

import (
	"testing"
	"testing/quick"

	"stackcache/internal/core"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

var rotPolicies = []core.RotatingPolicy{
	{NRegs: 1, OverflowTo: 1},
	{NRegs: 2, OverflowTo: 2},
	{NRegs: 4, OverflowTo: 2},
	{NRegs: 4, OverflowTo: 4},
	{NRegs: 6, OverflowTo: 5},
	{NRegs: 10, OverflowTo: 7},
}

func TestRotatingMatchesBaselineOnAllPrograms(t *testing.T) {
	progs := compileAll(t)
	for name, p := range progs {
		ref, err := interp.Run(p, interp.EngineSwitch)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		want := ref.Snapshot()
		for _, pol := range rotPolicies {
			res, err := RunRotating(p, pol)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, pol, err)
			}
			if got := res.Machine.Snapshot(); !want.Equal(got) {
				t.Errorf("%s %+v: snapshot mismatch\nwant stack %v out %q\ngot  stack %v out %q",
					name, pol, want.Stack, want.Output, got.Stack, got.Output)
			}
		}
	}
}

// TestRotatingEliminatesOverflowMoves is the §3.3 claim: the rotating
// organization has the same memory traffic as the minimal one but no
// moves on overflow.
func TestRotatingEliminatesOverflowMoves(t *testing.T) {
	p, err := forth.Compile(`
: f 1 2 3 4 5 + + + + ;
: main 0 200 0 do f + loop . ;`)
	if err != nil {
		t.Fatal(err)
	}
	min, err := Run(p, core.MinimalPolicy{NRegs: 4, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := RunRotating(p, core.RotatingPolicy{NRegs: 4, OverflowTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	if min.Counters.Overflows == 0 {
		t.Fatal("workload must overflow")
	}
	if rot.Counters.Overflows != min.Counters.Overflows {
		t.Errorf("overflow counts differ: %d vs %d", rot.Counters.Overflows, min.Counters.Overflows)
	}
	if rot.Counters.Loads != min.Counters.Loads || rot.Counters.Stores != min.Counters.Stores {
		t.Errorf("memory traffic differs: %d/%d vs %d/%d",
			rot.Counters.Loads, rot.Counters.Stores, min.Counters.Loads, min.Counters.Stores)
	}
	if rot.Counters.Moves >= min.Counters.Moves {
		t.Errorf("rotating should move less: %d vs %d", rot.Counters.Moves, min.Counters.Moves)
	}
}

func TestRotatingStatesCount(t *testing.T) {
	org, _ := core.OrganizationByName("overflow move opt.")
	for n := 1; n <= 8; n++ {
		pol := core.RotatingPolicy{NRegs: n, OverflowTo: 1}
		if got, want := int64(pol.States()), org.Count(n); got != want {
			t.Errorf("States(%d) = %d, want Fig.18's %d", n, got, want)
		}
	}
}

func TestRotatingPolicyValidate(t *testing.T) {
	if err := (core.RotatingPolicy{NRegs: 4, OverflowTo: 3}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	for _, pol := range []core.RotatingPolicy{
		{NRegs: 0, OverflowTo: 0},
		{NRegs: 4, OverflowTo: 5},
		{NRegs: 4, OverflowTo: 0},
	} {
		if err := pol.Validate(); err == nil {
			t.Errorf("policy %+v should be invalid", pol)
		}
	}
	p, err := forth.Compile(`: main ;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRotating(p, core.RotatingPolicy{}); err == nil {
		t.Error("invalid policy accepted by RunRotating")
	}
}

func TestRotatingStepProperties(t *testing.T) {
	f := func(nRegs, followup, c, in, out uint8) bool {
		n := int(nRegs%8) + 1
		fw := int(followup)%n + 1
		pol := core.RotatingPolicy{NRegs: n, OverflowTo: fw}
		minPol := core.MinimalPolicy{NRegs: n, OverflowTo: fw}
		ci := int(c) % (n + 1)
		x := int(in) % 4
		y := int(out) % 5
		rt := pol.Step(ci, x, y)
		mt := minPol.Step(ci, x, y)
		// Identical except overflows cost no moves.
		if rt.NewDepth != mt.NewDepth || rt.Loads != mt.Loads ||
			rt.Stores != mt.Stores || rt.Updates != mt.Updates {
			return false
		}
		if rt.Overflow && rt.Moves != 0 {
			return false
		}
		if !rt.Overflow && rt.Moves != mt.Moves {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestRotatingManipCosts(t *testing.T) {
	pol := core.RotatingPolicy{NRegs: 4, OverflowTo: 4}
	swap := vm.EffectOf(vm.OpSwap)
	tr := pol.StepManip(2, swap.In, swap.Map)
	if tr.Moves != 2 {
		t.Errorf("swap moves = %d, want 2", tr.Moves)
	}
	dup := vm.EffectOf(vm.OpDup)
	// dup with full cache: spill 1 by rotation; the copy itself still
	// needs one move, nothing else does.
	tr = pol.StepManip(4, dup.In, dup.Map)
	if !tr.Overflow || tr.Stores != 1 {
		t.Errorf("dup overflow: %+v", tr)
	}
	if tr.Moves != 1 {
		t.Errorf("dup overflow moves = %d, want 1 (the copy only)", tr.Moves)
	}
	// The minimal organization pays the shift moves on top.
	minTr := core.MinimalPolicy{NRegs: 4, OverflowTo: 4}.StepManip(4, dup.In, dup.Map)
	if minTr.Moves <= tr.Moves {
		t.Errorf("minimal should move more on spilling dup: %d vs %d", minTr.Moves, tr.Moves)
	}
}

func TestRotatingPropertyMatchesBaseline(t *testing.T) {
	safeOps := []vm.Opcode{
		vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpXor, vm.OpDup, vm.OpDrop,
		vm.OpSwap, vm.OpOver, vm.OpRot, vm.OpTuck, vm.OpTwoDup,
		vm.OpTwoDrop, vm.OpNip, vm.OpOnePlus, vm.OpZeroEq,
	}
	f := func(lits []int64, choices []uint8, nregs, fw uint8) bool {
		n := int(nregs)%8 + 1
		pol := core.RotatingPolicy{NRegs: n, OverflowTo: int(fw)%n + 1}
		b := vm.NewBuilder()
		depth := 0
		for i, v := range lits {
			if i >= 10 {
				break
			}
			b.Lit(vm.Cell(v))
			depth++
		}
		for depth < 4 {
			b.Lit(1)
			depth++
		}
		for _, ch := range choices {
			op := safeOps[int(ch)%len(safeOps)]
			eff := vm.EffectOf(op)
			if depth < eff.In || depth+eff.NetEffect() > 40 {
				continue
			}
			b.Emit(op)
			depth += eff.NetEffect()
		}
		b.Emit(vm.OpHalt)
		p, err := b.Build()
		if err != nil {
			return false
		}
		ref, err := interp.Run(p, interp.EngineSwitch)
		if err != nil {
			return false
		}
		res, err := RunRotating(p, pol)
		if err != nil {
			return false
		}
		return ref.Snapshot().Equal(res.Machine.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
