// Registry-driven consistency sweep. This lives in an external test
// package because internal/engine imports dyncache: the in-package
// tests (consistency_test.go) pin each organization against the
// baseline directly, while this file checks the same programs through
// the registry — the exact surface the service and CLIs consume — so a
// newly registered engine is consistency-tested here with zero edits.
package dyncache_test

import (
	"testing"

	"stackcache/internal/engine"
	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// The same program set as the in-package consistency sweep, duplicated
// because external test packages cannot share in-package helpers.
var registryPrograms = map[string]string{
	"arith": `: main 1 2 3 4 5 + - * swap / . 10 3 mod . ;`,
	"fib":   `: fib dup 2 < if exit then dup 1- recurse swap 2 - recurse + ; : main 15 fib . ;`,
	"sieve": `
create flags 100 allot
: main 100 0 do 1 flags i + c! loop
  10 2 do flags i + c@ if 100 i dup * do 0 flags i + c! j +loop then loop
  0 100 2 do flags i + c@ if 1+ then loop . ;`,
	"deepstack": `: main 1 2 3 4 5 6 7 8 9 10 + + + + + + + + + . ;`,
	"strings":   `: main s" abc" type ." xyz" cr 65 emit ;`,
	"loops":     `: main 0 100 0 do i + loop . 0 begin 1+ dup 10 >= until . ;`,
	"memory": `
variable a variable b
: main 7 a ! 35 b ! a @ b @ + . a @ b +! b @ . ;`,
	"manips": `: main 1 2 swap over rot dup 2dup + + + + + . 5 6 nip 7 tuck + + . ;`,
	"rstack": `: main 42 >r 1 2 + r> + . 9 >r r@ r> + . ;`,
	"depth":  `: main 1 2 3 depth . . . . ;`,
}

// TestRegistryConsistency runs every program under every registered
// engine and compares observable state against the switch baseline:
// exact engines bit for bit, inexact ones (statcache's guard zone) on
// output and final stack.
func TestRegistryConsistency(t *testing.T) {
	engines := engine.All()
	if engines[0].Name() != "switch" {
		t.Fatal("registry must lead with the switch baseline")
	}
	for name, src := range registryPrograms {
		t.Run(name, func(t *testing.T) {
			p, err := forth.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Verify(p); err != nil {
				t.Fatal(err)
			}
			ref := interp.NewMachine(p)
			if err := engines[0].Run(ref); err != nil {
				t.Fatalf("switch: %v", err)
			}
			refSnap := ref.Snapshot()
			for _, e := range engines[1:] {
				m := interp.NewMachine(p)
				if err := e.Run(m); err != nil {
					t.Errorf("%s: %v", e.Name(), err)
					continue
				}
				snap := m.Snapshot()
				if engine.TraitsOf(e).Exact {
					if !snap.Equal(refSnap) {
						t.Errorf("%s: snapshot diverges from switch", e.Name())
					}
					continue
				}
				if snap.Output != refSnap.Output {
					t.Errorf("%s: output %q, switch %q", e.Name(), snap.Output, refSnap.Output)
				}
				if len(snap.Stack) != len(refSnap.Stack) {
					t.Errorf("%s: stack %v, switch %v", e.Name(), snap.Stack, refSnap.Stack)
				}
			}
		})
	}
}
