package stackcache

// The shared engine table for cross-engine differential testing, built
// from the engine registry: every registered engine appears behind a
// uniform runner signature so that malformed_test.go, args_test.go and
// fuzz_engines_test.go drive all of them over the same programs —
// registering a new engine makes it covered here with zero edits.

import (
	"stackcache/internal/engine"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// engineRunner executes a program under one engine with an instruction
// budget (and optional ExecSpec inputs) and reports the observable
// final state.
type engineRunner struct {
	name string

	// exact engines promise bit-identical results to the switch
	// baseline on success AND the same error class (RuntimeError.Msg)
	// on failure. statcache is not exact: its guard zone (see
	// internal/statcache) turns some underflows into reads of zero,
	// and its compiler requires verified input.
	exact bool

	// needsVerify marks engines whose compiler rejects programs that
	// fail vm.Verify; differential tests skip them on such programs.
	needsVerify bool

	run     func(p *vm.Program, maxSteps int64) (interp.Snapshot, error)
	runSpec func(p *vm.Program, spec interp.ExecSpec) (interp.Snapshot, error)
}

// allEngines is the registry's engine set as differential-test
// runners, in registration order — the switch baseline first, which
// the tests rely on as the reference the others are compared against.
var allEngines = buildEngineTable()

func buildEngineTable() []engineRunner {
	var out []engineRunner
	for _, e := range engine.All() {
		e := e
		tr := engine.TraitsOf(e)
		runSpec := func(p *vm.Program, spec interp.ExecSpec) (interp.Snapshot, error) {
			m := interp.NewMachine(p)
			if err := m.ApplySpec(spec); err != nil {
				return interp.Snapshot{}, err
			}
			err := e.Run(m)
			return m.Snapshot(), err
		}
		out = append(out, engineRunner{
			name:        e.Name(),
			exact:       tr.Exact,
			needsVerify: tr.NeedsVerify,
			run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
				return runSpec(p, interp.ExecSpec{MaxSteps: maxSteps})
			},
			runSpec: runSpec,
		})
	}
	return out
}
