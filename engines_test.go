package stackcache

// The shared engine table for cross-engine differential testing. Every
// execution engine in the repository appears here behind a uniform
// runner signature so that malformed_test.go and fuzz_engines_test.go
// can drive all of them over the same programs.

import (
	"stackcache/internal/core"
	"stackcache/internal/dyncache"
	"stackcache/internal/gendyn"
	"stackcache/internal/gendyn4"
	"stackcache/internal/interp"
	"stackcache/internal/statcache"
	"stackcache/internal/vm"
)

// engineRunner executes a program under one engine with an instruction
// budget and reports the observable final state.
type engineRunner struct {
	name string

	// exact engines promise bit-identical results to the switch
	// baseline on success AND the same error class (RuntimeError.Msg)
	// on failure. statcache is not exact: its guard zone (see
	// internal/statcache) turns some underflows into reads of zero,
	// and its compiler requires verified input.
	exact bool

	// needsVerify marks engines whose compiler rejects programs that
	// fail vm.Verify; differential tests skip them on such programs.
	needsVerify bool

	run func(p *vm.Program, maxSteps int64) (interp.Snapshot, error)
}

func runInterp(e interp.Engine) func(*vm.Program, int64) (interp.Snapshot, error) {
	return func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		m := interp.NewMachine(p)
		m.MaxSteps = maxSteps
		var err error
		switch e {
		case interp.EngineSwitch:
			err = interp.RunSwitch(m)
		case interp.EngineToken:
			err = interp.RunToken(m)
		default:
			err = interp.RunThreaded(m)
		}
		return m.Snapshot(), err
	}
}

func runGenerated(gen func(*interp.Machine) error) func(*vm.Program, int64) (interp.Snapshot, error) {
	return func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		m := interp.NewMachine(p)
		m.MaxSteps = maxSteps
		err := gen(m)
		return m.Snapshot(), err
	}
}

// allEngines lists every execution engine in the repository. The
// switch interpreter must stay first: differential tests use it as the
// baseline the others are compared against.
var allEngines = []engineRunner{
	{name: "switch", exact: true, run: runInterp(interp.EngineSwitch)},
	{name: "token", exact: true, run: runInterp(interp.EngineToken)},
	{name: "threaded", exact: true, run: runInterp(interp.EngineThreaded)},
	{name: "traced", exact: true, run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		m, err := interp.RunTracedWithLimit(p, func(int, vm.Instr) {}, maxSteps)
		return m.Snapshot(), err
	}},
	{name: "dyncache", exact: true, run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		res, err := dyncache.RunWithLimit(p, core.MinimalPolicy{NRegs: 6, OverflowTo: 5}, maxSteps)
		if res == nil {
			return interp.Snapshot{}, err
		}
		return res.Machine.Snapshot(), err
	}},
	{name: "rotating", exact: true, run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		res, err := dyncache.RunRotatingWithLimit(p, core.RotatingPolicy{NRegs: 6, OverflowTo: 5}, maxSteps)
		if res == nil {
			return interp.Snapshot{}, err
		}
		return res.Machine.Snapshot(), err
	}},
	{name: "twostacks", exact: true, run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		res, err := dyncache.RunTwoStacksWithLimit(p, dyncache.TwoStackPolicy{NRegs: 6, RMax: 2, OverflowTo: 4}, maxSteps)
		if res == nil {
			return interp.Snapshot{}, err
		}
		return res.Machine.Snapshot(), err
	}},
	{name: "gendyn", exact: true, run: runGenerated(gendyn.Run)},
	{name: "gendyn4", exact: true, run: runGenerated(gendyn4.Run)},
	{name: "statcache", exact: false, needsVerify: true, run: func(p *vm.Program, maxSteps int64) (interp.Snapshot, error) {
		plan, err := statcache.Compile(p, statcache.Policy{NRegs: 6, Canonical: 2})
		if err != nil {
			return interp.Snapshot{}, err
		}
		res, err := statcache.ExecuteWithLimit(plan, maxSteps)
		if res == nil {
			return interp.Snapshot{}, err
		}
		return res.Machine.Snapshot(), err
	}},
}
