package stackcache

// Cross-engine differential tests for open program arguments: every
// registered engine must compute the same observable result from the
// same program, initial stack and memory overlay. This is the ExecSpec
// contract — inputs are part of every engine's semantics, including
// the caching engines whose register files must be seeded from the
// initial stack (the statcache guard-zone seeding in particular).

import (
	"encoding/binary"
	"fmt"
	"testing"

	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

const argsMaxSteps = 1 << 20

// runAllWithSpec executes p under every engine with the given spec and
// checks the exact engines match the switch baseline bit for bit
// (snapshots include stack, rstack, memory, output and step count).
func runAllWithSpec(t *testing.T, p *vm.Program, spec interp.ExecSpec) {
	t.Helper()
	if allEngines[0].name != "switch" {
		t.Fatal("engine table must lead with the switch baseline")
	}
	ref, refErr := allEngines[0].runSpec(p, spec)
	if refErr != nil {
		t.Fatalf("switch baseline: %v", refErr)
	}
	for _, e := range allEngines[1:] {
		got, err := e.runSpec(p, spec)
		if err != nil {
			t.Errorf("%s: %v", e.name, err)
			continue
		}
		if !e.exact {
			// Inexact engines still owe the same output and final
			// stack; only error classes and underflow handling differ.
			if got.Output != ref.Output {
				t.Errorf("%s: output %q, switch %q", e.name, got.Output, ref.Output)
			}
			if fmt.Sprint(got.Stack) != fmt.Sprint(ref.Stack) {
				t.Errorf("%s: stack %v, switch %v", e.name, got.Stack, ref.Stack)
			}
			continue
		}
		if !got.Equal(ref) {
			t.Errorf("%s: snapshot diverges from switch\n got: %+v\nwant: %+v", e.name, got, ref)
		}
	}
}

func compileArgs(t *testing.T, src string) *vm.Program {
	t.Helper()
	p, err := forth.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArgsDifferential(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []vm.Cell
	}{
		{"add", ": main + . ;", []vm.Cell{30, 12}},
		{"negatives", ": main - . ;", []vm.Cell{-100, -58}},
		{"deep-consume", ": main + + + + + + + . ;", []vm.Cell{1, 2, 3, 4, 5, 6, 7, 8}},
		{"leave-on-stack", ": main dup * ;", []vm.Cell{9}},
		{"mixed", ": main over over > if swap then - . ;", []vm.Cell{17, 42}},
		{"loop-bound", ": main 0 swap 0 do 1 + loop . ;", []vm.Cell{10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compileArgs(t, tc.src)
			runAllWithSpec(t, p, interp.ExecSpec{MaxSteps: argsMaxSteps, Args: tc.args})
		})
	}
}

// TestArgsDeepInitialStack seeds more cells than any register file
// holds, so every caching engine must spill the seed into memory (the
// statcache guard-zone inverse mapping, the dyncache overflow states).
func TestArgsDeepInitialStack(t *testing.T) {
	args := make([]vm.Cell, 64)
	for i := range args {
		args[i] = vm.Cell(i * i)
	}
	// Sum everything: 63 additions, then print.
	src := ": main "
	for i := 0; i < len(args)-1; i++ {
		src += "+ "
	}
	src += ". ;"
	p := compileArgs(t, src)
	runAllWithSpec(t, p, interp.ExecSpec{MaxSteps: argsMaxSteps, Args: args})
}

// TestMemOverlayDifferential overlays data memory and has the program
// read it back: handcrafted bytecode with OpFetch so the overlay is
// observable without compiler involvement.
func TestMemOverlayDifferential(t *testing.T) {
	prog := &vm.Program{
		Code: []vm.Instr{
			{Op: vm.OpLit, Arg: 0},
			{Op: vm.OpFetch}, // cell at addr 0
			{Op: vm.OpLit, Arg: 8},
			{Op: vm.OpFetch}, // cell at addr 8
			{Op: vm.OpAdd},
			{Op: vm.OpDot},
			{Op: vm.OpHalt},
		},
		MemSize: 64,
	}
	if err := vm.Verify(prog); err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 16)
	binary.LittleEndian.PutUint64(mem[0:], 40)
	binary.LittleEndian.PutUint64(mem[8:], 2)
	runAllWithSpec(t, prog, interp.ExecSpec{MaxSteps: argsMaxSteps, Mem: mem})
}

// TestArgsAndOverlayTogether combines both input channels.
func TestArgsAndOverlayTogether(t *testing.T) {
	src := "variable x : main x @ * . ;"
	p := compileArgs(t, src)
	mem := make([]byte, 8)
	binary.LittleEndian.PutUint64(mem, 6)
	runAllWithSpec(t, p, interp.ExecSpec{MaxSteps: argsMaxSteps, Args: []vm.Cell{7}, Mem: mem})
}

// TestApplySpecValidation: oversized inputs are rejected before any
// engine runs.
func TestApplySpecValidation(t *testing.T) {
	p := compileArgs(t, ": main ;")
	m := interp.NewMachine(p)
	if err := m.ApplySpec(interp.ExecSpec{Args: make([]vm.Cell, len(m.Stack)+1)}); err == nil {
		t.Error("oversized args accepted")
	}
	if err := m.ApplySpec(interp.ExecSpec{Mem: make([]byte, len(m.Mem)+1)}); err == nil {
		t.Error("oversized memory overlay accepted")
	}
}
