package stackcache

// Quickened vs unquickened bytecode over the paper's four workloads —
// the acceptance benchmark for cache-time quickening. Each dispatching
// wall-clock engine runs the same workload in both forms in tightly
// interleaved A/B rounds (best round kept), so machine drift cannot
// bias the comparison; the step counts of the two forms are asserted
// identical before timing, because quickening must buy dispatches,
// never observable steps.
//
// Running
//
//	WRITE_BENCH_JSON=1 go test -run TestWriteBenchPR8 .
//
// re-measures the sweep and rewrites BENCH_PR8.json at the repository
// root, at both concurrency points (single goroutine at GOMAXPROCS=1,
// NumCPU goroutines at GOMAXPROCS=NumCPU).

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"stackcache/internal/engine"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
)

// quickenBenchEngines are the dispatching engines the quickening
// benchmark measures: the three classic dispatch techniques plus the
// generated per-state interpreter, all of which carry fused cases.
var quickenBenchEngines = []string{"switch", "token", "threaded", "gendyn"}

// quickenedProgram quickens the workload program and pins the rewrite:
// at least one planted site, verifier-clean.
func quickenedProgram(tb testing.TB, p *vm.Program) *vm.Program {
	tb.Helper()
	q, n := vm.Quicken(p)
	if n == 0 {
		tb.Fatal("workload did not quicken")
	}
	if err := vm.Verify(q); err != nil {
		tb.Fatalf("quickened program rejected: %v", err)
	}
	return q
}

func BenchmarkQuickenedVsUnquickened(b *testing.B) {
	for _, name := range quickenBenchEngines {
		e, ok := engine.Lookup(name)
		if !ok {
			b.Fatalf("engine %q not registered", name)
		}
		for _, w := range paperWorkloads {
			p := benchProgram(b, w)
			q := quickenedProgram(b, p)
			for _, form := range []struct {
				label string
				prog  *vm.Program
			}{{"plain", p}, {"quickened", q}} {
				b.Run(name+"/"+w+"/"+form.label, func(b *testing.B) {
					var steps int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m := interp.NewMachine(form.prog)
						if err := e.Run(m); err != nil {
							b.Fatal(err)
						}
						steps = m.Steps
					}
					reportPerInst(b, steps)
					b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
				})
			}
		}
	}
}

// benchPR8Point is enginePoint plus the program form and concurrency
// coordinates.
type benchPR8Point struct {
	enginePoint
	Quickened  bool `json:"quickened"`
	GoMaxProcs int  `json:"gomaxprocs"`
	Goroutines int  `json:"goroutines"`
}

type benchPR8Report struct {
	Bench       string          `json:"bench"`
	Description string          `json:"description"`
	NumCPU      int             `json:"numcpu"`
	Points      []benchPR8Point `json:"points"`
}

// TestWriteBenchPR8 regenerates BENCH_PR8.json when WRITE_BENCH_JSON
// is set; otherwise it only checks the committed file parses and
// covers every engine × workload × form × concurrency cell.
func TestWriteBenchPR8(t *testing.T) {
	const path = "BENCH_PR8.json"
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Skipf("no committed trajectory yet: %v", err)
		}
		var rep benchPR8Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("committed BENCH_PR8.json is invalid: %v", err)
		}
		if want := len(quickenBenchEngines) * len(paperWorkloads) * 2 * 2; len(rep.Points) != want {
			t.Fatalf("committed BENCH_PR8.json has %d points, want %d "+
				"(%d engines x %d workloads x 2 forms x 2 concurrency points)",
				len(rep.Points), want, len(quickenBenchEngines), len(paperWorkloads))
		}
		return
	}

	rep := benchPR8Report{
		Bench: "quickened-vs-unquickened",
		Description: "fixed-work paper-workload runs, cache-time quickened bytecode " +
			"vs the same program unquickened, per dispatching engine; the two forms " +
			"are measured in tightly interleaved rounds (best round kept) so machine " +
			"drift cannot bias the comparison; step counts are identical by contract " +
			"(asserted before timing); single goroutine at GOMAXPROCS=1 and NumCPU " +
			"goroutines at GOMAXPROCS=NumCPU",
		NumCPU: runtime.NumCPU(),
	}
	const rounds, reps = 8, 2
	for _, name := range quickenBenchEngines {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %q not registered", name)
		}
		for _, w := range paperWorkloads {
			p := benchProgram(t, w)
			q := quickenedProgram(t, p)
			forms := map[bool]*vm.Program{false: p, true: q}
			run := func(prog *vm.Program) int64 {
				m := interp.NewMachine(prog)
				if err := e.Run(m); err != nil {
					t.Fatalf("%s/%s: %v", name, w, err)
				}
				return m.Steps
			}
			steps := run(p)
			if qs := run(q); qs != steps {
				t.Fatalf("%s/%s: quickened ran %d steps, unquickened %d — the contract is broken",
					name, w, qs, steps)
			}

			for _, par := range []bool{false, true} {
				procs, workers := 1, 1
				if par {
					procs, workers = runtime.NumCPU(), runtime.NumCPU()
				}
				prev := runtime.GOMAXPROCS(procs)
				best := map[bool]time.Duration{}
				for r := 0; r < rounds; r++ {
					for _, quickened := range []bool{false, true} {
						prog := forms[quickened]
						start := time.Now()
						var wg sync.WaitGroup
						for g := 0; g < workers; g++ {
							wg.Add(1)
							go func() {
								defer wg.Done()
								for i := 0; i < reps; i++ {
									run(prog)
								}
							}()
						}
						wg.Wait()
						elapsed := time.Since(start)
						if b, ok := best[quickened]; !ok || elapsed < b {
							best[quickened] = elapsed
						}
					}
				}
				runtime.GOMAXPROCS(prev)
				for _, quickened := range []bool{false, true} {
					elapsed := best[quickened]
					total := steps * reps * int64(workers)
					rep.Points = append(rep.Points, benchPR8Point{
						enginePoint: enginePoint{
							Engine:      name,
							Workload:    w,
							Runs:        reps * workers,
							Steps:       steps,
							Seconds:     elapsed.Seconds(),
							StepsPerSec: float64(total) / elapsed.Seconds(),
							NsPerInst:   float64(elapsed.Nanoseconds()) / float64(total),
						},
						Quickened:  quickened,
						GoMaxProcs: procs,
						Goroutines: workers,
					})
				}
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
