package stackcache

// Cross-engine differential coverage for cache-time quickening: a
// quickened program must be observably identical to its unquickened
// original — output, final stack, pc, step count, and error class —
// on every engine, at every step budget. These tests are the
// execution half of the vm.Quicken contract (the rewrite half lives
// in internal/vm/super_test.go): superinstructions buy dispatches,
// never observable steps.

import (
	"testing"

	"stackcache/internal/forth"
	"stackcache/internal/interp"
	"stackcache/internal/vm"
	"stackcache/internal/workloads"
)

// quickenSweepProgram hits every entry of the vm.Fusions quickening
// table inside a counted loop, so fused sequences execute repeatedly
// from varying stack contents and the budget sweep crosses each super
// at several step offsets.
func quickenSweepProgram() *vm.Program {
	ins := func(op vm.Opcode, arg vm.Cell) vm.Instr { return vm.Instr{Op: op, Arg: arg} }
	return &vm.Program{
		MemSize: 64,
		Code: []vm.Instr{
			// 9 8 ! — seed mem[8]
			ins(vm.OpLit, 9),
			ins(vm.OpLit, 8),
			ins(vm.OpStore, 0),
			// 4 0 do ... loop
			ins(vm.OpLit, 4),
			ins(vm.OpLit, 0),
			ins(vm.OpDo, 0),
			ins(vm.OpI, 0), // 6: loop body start (branch target)
			ins(vm.OpLit, 8),
			ins(vm.OpFetch, 0),
			ins(vm.OpAdd, 0), // 7..9: lit @ + — q-lit-fetch-add
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpLit, 8),
			ins(vm.OpFetch, 0),
			ins(vm.OpAdd, 0),
			ins(vm.OpCFetch, 0), // 12..15: lit @ + c@ — q-lit-fetch-add-cfetch
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpDup, 0),
			ins(vm.OpLit, 2),
			ins(vm.OpEq, 0), // 18..20: dup lit = — q-dup-lit-eq
			ins(vm.OpDot, 0),
			ins(vm.OpLit, 8),
			ins(vm.OpPlusStore, 0), // 22..23: lit +! — q-lit-plus-store (mem[8] += i)
			ins(vm.OpLit, 1),
			ins(vm.OpLit, 16),
			ins(vm.OpPlusStore, 0), // 24..26: lit lit +! — q-lit-lit-plus-store
			ins(vm.OpLit, 8),
			ins(vm.OpFetch, 0),
			ins(vm.OpLit, 12),
			ins(vm.OpGe, 0), // 27..30: lit @ lit >= — q-lit-fetch-lit-ge
			ins(vm.OpDot, 0),
			ins(vm.OpLit, 5),
			ins(vm.OpLit, 8),
			ins(vm.OpFetch, 0),
			ins(vm.OpAdd, 0), // 32..35: lit lit @ + — q-lit-lit-fetch-add
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpI, 0),
			ins(vm.OpAdd, 0),
			ins(vm.OpCFetch, 0), // 39..40: + c@ — q-add-cfetch
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpLit, 3),
			ins(vm.OpEq, 0), // 43..44: lit = — q-lit-eq
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpLit, 12),
			ins(vm.OpSwap, 0),
			ins(vm.OpLit, 1),
			ins(vm.OpRshift, 0),
			ins(vm.OpSwap, 0), // 48..51: swap lit rshift swap — q-swap-lit-rshift-swap
			ins(vm.OpDot, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpI, 0),
			ins(vm.OpLit, 2),
			ins(vm.OpLit, 3),
			ins(vm.OpLshift, 0),
			ins(vm.OpOver, 0),
			ins(vm.OpLit, 15), // 56..59: lit lshift over lit — q-lit-lshift-over-lit
			ins(vm.OpAnd, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpLoop, 6),
			// 8 @ . — q-lit-fetch
			ins(vm.OpLit, 8),
			ins(vm.OpFetch, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpHalt, 0),
		},
	}
}

// mustQuicken verifies p, quickens it, re-verifies the result, and
// fails the test unless at least min sites were planted.
func mustQuicken(t *testing.T, p *vm.Program, min int) *vm.Program {
	t.Helper()
	if err := vm.Verify(p); err != nil {
		t.Fatalf("Verify(original) = %v", err)
	}
	q, n := vm.Quicken(p)
	if n < min {
		t.Fatalf("Quicken planted %d sites, want >= %d", n, min)
	}
	if err := vm.Verify(q); err != nil {
		t.Fatalf("Verify(quickened) = %v", err)
	}
	return q
}

// TestQuickenedEnginesAgree runs the quickened form of every paper
// workload on every engine and requires the unquickened switch
// baseline's observable result — including the exact step count.
func TestQuickenedEnginesAgree(t *testing.T) {
	// The table was mined from the four paper workloads; each of them
	// must actually quicken. The remaining workloads ride along with
	// whatever the table plants in them (possibly nothing).
	paper := map[string]bool{"compile": true, "gray": true, "prims2x": true, "cross": true}
	for _, w := range workloads.All() {
		p, err := forth.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		min := 0
		if paper[w.Name] {
			min = 1
		}
		q := mustQuicken(t, p, min)

		base := allEngines[0]
		want, err := base.run(p, 1<<26)
		if err != nil {
			t.Fatalf("%s: baseline: %v", w.Name, err)
		}
		for _, e := range allEngines {
			if !e.exact {
				continue
			}
			got, err := e.run(q, 1<<26)
			if err != nil {
				t.Errorf("%s/%s: quickened run failed: %v", w.Name, e.name, err)
				continue
			}
			if !want.Equal(got) {
				t.Errorf("%s/%s: quickened snapshot diverges from unquickened switch", w.Name, e.name)
			}
			if want.Steps != got.Steps {
				t.Errorf("%s/%s: quickened ran %d steps, unquickened switch %d (a super must count one step per constituent)",
					w.Name, e.name, got.Steps, want.Steps)
			}
		}
	}
}

// TestQuickenedBudgetSweep is the step-accounting differential: the
// fusion-dense sweep program, quickened, run on every exact engine
// under every budget from 1 to past completion, must match the
// unquickened switch baseline's snapshot, step count and error class
// at each one — including the budgets that exhaust mid-sequence,
// where a fused case must refuse to fire and de-fuse instead.
func TestQuickenedBudgetSweep(t *testing.T) {
	p := quickenSweepProgram()
	q := mustQuicken(t, p, 10)

	base := allEngines[0]
	full, err := base.run(p, 1<<20)
	if err != nil {
		t.Fatalf("baseline full run: %v", err)
	}
	for b := int64(1); b <= full.Steps+2; b++ {
		wantSnap, wantErr := base.run(p, b)
		wm := errMsg(t, "switch/unquickened", wantErr)
		for _, e := range allEngines {
			if !e.exact {
				continue
			}
			gotSnap, gotErr := e.run(q, b)
			if gm := errMsg(t, e.name, gotErr); gm != wm {
				t.Fatalf("budget %d: %s quickened error %q, unquickened switch %q", b, e.name, gm, wm)
			}
			if !wantSnap.Equal(gotSnap) {
				t.Fatalf("budget %d: %s quickened snapshot diverges from unquickened switch\n"+
					"switch: %+v\n%s: %+v", b, e.name, wantSnap, e.name, gotSnap)
			}
			if wantSnap.Steps != gotSnap.Steps {
				t.Fatalf("budget %d: %s quickened ran %d steps, unquickened switch %d",
					b, e.name, gotSnap.Steps, wantSnap.Steps)
			}
		}
	}
}

// TestSuperGarbageTailDeFuses covers hand-built (unverifiable-shape)
// programs the quickener would never produce: a super opcode planted
// over a tail that does not match its expansion, and a branch jumping
// into the interior of a fused sequence. Every engine must execute
// such code exactly like its CanonicalInstr rewrite — the super
// behaves as its first constituent, the in-place tail as real
// instructions.
func TestSuperGarbageTailDeFuses(t *testing.T) {
	ins := func(op vm.Opcode, arg vm.Cell) vm.Instr { return vm.Instr{Op: op, Arg: arg} }
	cases := []struct {
		name string
		code []vm.Instr
	}{
		{"mismatched tail", []vm.Instr{
			ins(vm.OpQLitFetch, 8), // tail is dup, not @ — must de-fuse to lit 8
			ins(vm.OpDup, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpHalt, 0),
		}},
		{"truncated tail", []vm.Instr{
			ins(vm.OpLit, 1),
			ins(vm.OpBranchZero, 4),
			ins(vm.OpHalt, 0),
			ins(vm.OpDrop, 0),
			ins(vm.OpQLitLitFetchAdd, 7), // 4-gram super two pcs from the end
			ins(vm.OpLit, 3),
			ins(vm.OpAdd, 0),
		}},
		{"branch into fused interior", []vm.Instr{
			ins(vm.OpQLitFetch, 8), // matching tail, but pc 1 is also a branch target
			ins(vm.OpFetch, 0),
			ins(vm.OpDot, 0),
			ins(vm.OpLit, 0),
			ins(vm.OpBranchZero, 1),
			ins(vm.OpHalt, 0),
		}},
	}
	for _, tc := range cases {
		p := &vm.Program{Code: tc.code, MemSize: 64}
		u := vm.Unquicken(p)
		base := allEngines[0]
		// Modest budget: the branch-into-interior case loops forever by
		// construction, so the step limit itself is under test.
		const budget = 100
		want, wantErr := base.run(u, budget)
		wm := errMsg(t, "switch/unquickened", wantErr)
		for _, e := range allEngines {
			if e.needsVerify {
				continue // statcache requires verified input
			}
			got, err := e.run(p, budget)
			if gm := errMsg(t, e.name, err); gm != wm {
				t.Errorf("%s/%s: error %q, unquickened switch %q", tc.name, e.name, gm, wm)
				continue
			}
			if !want.Equal(got) {
				t.Errorf("%s/%s: snapshot diverges from unquickened switch", tc.name, e.name)
			}
			if e.exact && want.Steps != got.Steps {
				t.Errorf("%s/%s: %d steps, unquickened switch %d", tc.name, e.name, got.Steps, want.Steps)
			}
		}
	}
}

// TestQuickenedArgsAndErrors quickens a program whose fused sequences
// fail mid-constituent on some inputs (an out-of-range c@ inside
// q-add-cfetch) and requires the baseline's exact error either way.
func TestQuickenedArgsAndErrors(t *testing.T) {
	ins := func(op vm.Opcode, arg vm.Cell) vm.Instr { return vm.Instr{Op: op, Arg: arg} }
	p := &vm.Program{MemSize: 64, Code: []vm.Instr{
		ins(vm.OpAdd, 0),
		ins(vm.OpCFetch, 0), // + c@ — q-add-cfetch over seeded args
		ins(vm.OpDot, 0),
		ins(vm.OpHalt, 0),
	}}
	q := mustQuicken(t, p, 1)

	base := allEngines[0]
	for _, args := range [][]vm.Cell{
		{3, 4},        // in range: prints mem[7]
		{60, 10},      // out of range: c@ fails inside the fused pair
		{1 << 62, 42}, // overflowing address arithmetic
		{5},           // underflow: the first constituent's error
	} {
		spec := interp.ExecSpec{MaxSteps: 1 << 10, Args: args}
		want, wantErr := base.runSpec(p, spec)
		wm := errMsg(t, "switch/unquickened", wantErr)
		for _, e := range allEngines {
			if e.needsVerify {
				continue // the guard-zone engine deviates on underflow by design
			}
			got, err := e.runSpec(q, spec)
			if gm := errMsg(t, e.name, err); gm != wm {
				t.Errorf("args %v/%s: error %q, unquickened switch %q", args, e.name, gm, wm)
				continue
			}
			if wantErr == nil && !want.Equal(got) {
				t.Errorf("args %v/%s: snapshot diverges from unquickened switch", args, e.name)
			}
			if e.exact && want.Steps != got.Steps {
				t.Errorf("args %v/%s: %d steps, unquickened switch %d", args, e.name, got.Steps, want.Steps)
			}
		}
	}
}
